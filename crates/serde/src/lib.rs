//! # lip-serde
//!
//! Minimal, dependency-free JSON for the workspace: checkpoint headers,
//! layer/config round-trips and the `results/*.json` tables all go through
//! this crate instead of `serde`/`serde_json`.
//!
//! Three pieces:
//!
//! * [`Json`] — an owned JSON value (objects preserve insertion order, so
//!   written files are stable and diffable),
//! * [`ToJson`] / [`FromJson`] — derive-free conversion traits, with the
//!   [`json_struct!`] and [`json_unit_enum!`] macros generating impls for
//!   plain named-field structs and unit-variant enums,
//! * [`to_string`] / [`to_string_pretty`] / [`to_vec`] / [`from_str`] /
//!   [`from_slice`] — the `serde_json`-shaped entry points.
//!
//! Intentional limits (documented, not accidental): numbers are `u64`/`i64`/
//! `f64` (no arbitrary precision), non-finite floats serialize as `null`,
//! and decoding is strict about types but lenient about extra object keys —
//! the forward-compatibility behaviour checkpoints rely on.

#![forbid(unsafe_code)]

mod parse;
mod write;

pub use parse::parse;

/// An owned JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(Num),
    Str(String),
    Array(Vec<Json>),
    /// Key–value pairs in insertion order (no map: order stability matters
    /// more than lookup speed at these sizes).
    Object(Vec<(String, Json)>),
}

/// A JSON number, kept in its narrowest faithful representation so `u64`
/// seeds and MAC counts survive beyond the 2^53 float window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Num {
    U(u64),
    I(i64),
    F(f64),
}

/// Decode / encode failure, optionally carrying the 1-based line/column
/// position in the source text (parse errors attach it; conversion errors
/// are position-less).
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    msg: String,
    pos: Option<(usize, usize)>,
}

impl JsonError {
    /// Position-less error (type mismatches, missing fields).
    pub fn new(msg: impl Into<String>) -> Self {
        JsonError {
            msg: msg.into(),
            pos: None,
        }
    }

    /// Error anchored at a source position (1-based line and column).
    pub fn at(msg: impl Into<String>, line: usize, column: usize) -> Self {
        JsonError {
            msg: msg.into(),
            pos: Some((line, column)),
        }
    }

    /// The source position `(line, column)`, if known.
    pub fn position(&self) -> Option<(usize, usize)> {
        self.pos
    }

    /// Prefix the message with surrounding context, keeping the position.
    pub fn with_context(mut self, context: impl std::fmt::Display) -> Self {
        self.msg = format!("{context}: {}", self.msg);
        self
    }
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.msg)?;
        if let Some((line, column)) = self.pos {
            write!(f, " at line {line}, column {column}")?;
        }
        Ok(())
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Object lookup by key (None on non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Decode a required object field.
    pub fn field<T: FromJson>(&self, key: &str) -> Result<T, JsonError> {
        let v = self
            .get(key)
            .ok_or_else(|| JsonError::new(format!("missing field '{key}'")))?;
        T::from_json(v).map_err(|e| e.with_context(format!("field '{key}'")))
    }

    pub fn as_bool(&self) -> Result<bool, JsonError> {
        match self {
            Json::Bool(b) => Ok(*b),
            other => Err(type_err("bool", other)),
        }
    }

    pub fn as_str(&self) -> Result<&str, JsonError> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(type_err("string", other)),
        }
    }

    pub fn as_array(&self) -> Result<&[Json], JsonError> {
        match self {
            Json::Array(v) => Ok(v),
            other => Err(type_err("array", other)),
        }
    }

    pub fn as_object(&self) -> Result<&[(String, Json)], JsonError> {
        match self {
            Json::Object(v) => Ok(v),
            other => Err(type_err("object", other)),
        }
    }

    pub fn as_f64(&self) -> Result<f64, JsonError> {
        match self {
            Json::Num(Num::F(f)) => Ok(*f),
            Json::Num(Num::U(u)) => Ok(*u as f64),
            Json::Num(Num::I(i)) => Ok(*i as f64),
            other => Err(type_err("number", other)),
        }
    }

    pub fn as_u64(&self) -> Result<u64, JsonError> {
        match self {
            Json::Num(Num::U(u)) => Ok(*u),
            Json::Num(Num::I(i)) if *i >= 0 => Ok(*i as u64),
            Json::Num(Num::F(f)) if *f >= 0.0 && f.fract() == 0.0 && *f < 2f64.powi(53) => {
                Ok(*f as u64)
            }
            other => Err(type_err("unsigned integer", other)),
        }
    }

    pub fn as_i64(&self) -> Result<i64, JsonError> {
        match self {
            Json::Num(Num::I(i)) => Ok(*i),
            Json::Num(Num::U(u)) if *u <= i64::MAX as u64 => Ok(*u as i64),
            Json::Num(Num::F(f)) if f.fract() == 0.0 && f.abs() < 2f64.powi(53) => Ok(*f as i64),
            other => Err(type_err("integer", other)),
        }
    }

    /// Compact single-line rendering.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        write::write_compact(self, &mut out);
        out
    }

    /// Indented multi-line rendering (2 spaces, `serde_json`-style).
    pub fn dump_pretty(&self) -> String {
        let mut out = String::new();
        write::write_pretty(self, 0, &mut out);
        out
    }
}

fn type_err(wanted: &str, got: &Json) -> JsonError {
    let kind = match got {
        Json::Null => "null",
        Json::Bool(_) => "bool",
        Json::Num(_) => "number",
        Json::Str(_) => "string",
        Json::Array(_) => "array",
        Json::Object(_) => "object",
    };
    JsonError::new(format!("expected {wanted}, found {kind}"))
}

/// Encode `self` as a [`Json`] value.
pub trait ToJson {
    fn to_json(&self) -> Json;
}

/// Decode `Self` from a [`Json`] value.
pub trait FromJson: Sized {
    fn from_json(v: &Json) -> Result<Self, JsonError>;
}

// ---------------------------------------------------------------- primitives

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl FromJson for Json {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(v.clone())
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_bool()
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl FromJson for String {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_str().map(str::to_string)
    }
}

macro_rules! json_uint {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json { Json::Num(Num::U(*self as u64)) }
        }
        impl FromJson for $t {
            fn from_json(v: &Json) -> Result<Self, JsonError> {
                let u = v.as_u64()?;
                <$t>::try_from(u).map_err(|_| JsonError::new(
                    format!("{u} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
json_uint!(u8, u16, u32, u64, usize);

macro_rules! json_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json { Json::Num(Num::I(*self as i64)) }
        }
        impl FromJson for $t {
            fn from_json(v: &Json) -> Result<Self, JsonError> {
                let i = v.as_i64()?;
                <$t>::try_from(i).map_err(|_| JsonError::new(
                    format!("{i} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
json_int!(i8, i16, i32, i64, isize);

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(Num::F(*self))
    }
}

impl FromJson for f64 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_f64()
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Json {
        // shortest decimal that round-trips the f32, parsed as f64: keeps
        // files human-readable ("0.1", not "0.10000000149011612") while
        // `as f32` on decode restores the exact bits
        let shortest: f64 = format!("{self:?}").parse().unwrap_or(f64::from(*self));
        Json::Num(Num::F(shortest))
    }
}

impl FromJson for f32 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(v.as_f64()? as f32)
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_array()?.iter().map(T::from_json).collect()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

// ------------------------------------------------------------- entry points

/// Compact encoding, `serde_json::to_string`-shaped.
pub fn to_string<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().dump()
}

/// Pretty (2-space indented) encoding.
pub fn to_string_pretty<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().dump_pretty()
}

/// Compact encoding as UTF-8 bytes.
pub fn to_vec<T: ToJson + ?Sized>(value: &T) -> Vec<u8> {
    to_string(value).into_bytes()
}

/// Parse and decode from a `&str`.
pub fn from_str<T: FromJson>(s: &str) -> Result<T, JsonError> {
    T::from_json(&parse(s)?)
}

/// Parse and decode from UTF-8 bytes.
pub fn from_slice<T: FromJson>(bytes: &[u8]) -> Result<T, JsonError> {
    let s = std::str::from_utf8(bytes).map_err(|e| JsonError::new(format!("not utf-8: {e}")))?;
    from_str(s)
}

// ------------------------------------------------------------------- macros

/// Generate [`ToJson`] + [`FromJson`] for a named-field struct. Decoding
/// ignores unknown keys (forward compatible) and requires every listed field.
///
/// ```
/// #[derive(Debug, PartialEq)]
/// struct Point { x: f32, y: f32, label: String }
/// lip_serde::json_struct!(Point { x, y, label });
///
/// let p = Point { x: 1.0, y: -2.5, label: "a".into() };
/// let back: Point = lip_serde::from_str(&lip_serde::to_string(&p)).unwrap();
/// assert_eq!(back, p);
/// ```
#[macro_export]
macro_rules! json_struct {
    ($name:ident { $($field:ident),+ $(,)? }) => {
        impl $crate::ToJson for $name {
            fn to_json(&self) -> $crate::Json {
                $crate::Json::Object(vec![
                    $((stringify!($field).to_string(),
                       $crate::ToJson::to_json(&self.$field)),)+
                ])
            }
        }
        impl $crate::FromJson for $name {
            fn from_json(v: &$crate::Json) -> Result<Self, $crate::JsonError> {
                Ok(Self { $($field: v.field(stringify!($field))?,)+ })
            }
        }
    };
}

/// Generate [`ToJson`] + [`FromJson`] for a unit-variant enum, encoded as
/// the variant name string (the representation `serde` used for these
/// enums, so existing result files stay readable).
///
/// ```
/// #[derive(Debug, PartialEq, Clone, Copy)]
/// enum Color { Red, Green }
/// lip_serde::json_unit_enum!(Color { Red, Green });
///
/// assert_eq!(lip_serde::to_string(&Color::Red), "\"Red\"");
/// let c: Color = lip_serde::from_str("\"Green\"").unwrap();
/// assert_eq!(c, Color::Green);
/// ```
#[macro_export]
macro_rules! json_unit_enum {
    ($name:ident { $($variant:ident),+ $(,)? }) => {
        impl $crate::ToJson for $name {
            fn to_json(&self) -> $crate::Json {
                $crate::Json::Str(match self {
                    $($name::$variant => stringify!($variant).to_string(),)+
                })
            }
        }
        impl $crate::FromJson for $name {
            fn from_json(v: &$crate::Json) -> Result<Self, $crate::JsonError> {
                match v.as_str()? {
                    $(stringify!($variant) => Ok($name::$variant),)+
                    other => Err($crate::JsonError::new(format!(
                        "unknown {} variant '{other}'", stringify!($name)))),
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrips() {
        assert_eq!(to_string(&true), "true");
        assert_eq!(to_string(&42u64), "42");
        assert_eq!(to_string(&-7i32), "-7");
        assert_eq!(to_string(&1.5f64), "1.5");
        assert_eq!(to_string(&"hi"), "\"hi\"");
        assert!(!from_str::<bool>("false").unwrap());
        assert_eq!(from_str::<usize>("123").unwrap(), 123);
        assert_eq!(from_str::<f32>("0.25").unwrap(), 0.25);
        assert_eq!(from_str::<String>("\"x\\ny\"").unwrap(), "x\ny");
    }

    #[test]
    fn f32_stays_short_and_exact() {
        let v = 0.1f32;
        let s = to_string(&v);
        assert_eq!(s, "0.1");
        assert_eq!(from_str::<f32>(&s).unwrap(), v);
    }

    #[test]
    fn large_u64_survives() {
        let seed = u64::MAX - 3;
        let s = to_string(&seed);
        assert_eq!(from_str::<u64>(&s).unwrap(), seed);
    }

    #[test]
    fn vec_and_option() {
        let v = vec![1usize, 2, 3];
        assert_eq!(to_string(&v), "[1,2,3]");
        assert_eq!(from_str::<Vec<usize>>("[1,2,3]").unwrap(), v);
        assert_eq!(to_string(&Option::<u32>::None), "null");
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<u32>>("9").unwrap(), Some(9));
    }

    #[derive(Debug, PartialEq)]
    struct Demo {
        n: usize,
        name: String,
        ratio: f32,
        flags: Vec<bool>,
    }
    json_struct!(Demo { n, name, ratio, flags });

    #[test]
    fn struct_macro_roundtrip() {
        let d = Demo {
            n: 8,
            name: "patch".into(),
            ratio: 0.5,
            flags: vec![true, false],
        };
        let s = to_string(&d);
        assert_eq!(s, r#"{"n":8,"name":"patch","ratio":0.5,"flags":[true,false]}"#);
        assert_eq!(from_str::<Demo>(&s).unwrap(), d);
    }

    #[test]
    fn struct_decode_ignores_unknown_keys() {
        let s = r#"{"n":1,"name":"x","ratio":2.0,"flags":[],"future_field":99}"#;
        assert_eq!(from_str::<Demo>(s).unwrap().n, 1);
    }

    #[test]
    fn struct_decode_reports_missing_field() {
        let e = from_str::<Demo>(r#"{"n":1}"#).unwrap_err();
        assert!(e.to_string().contains("missing field 'name'"), "{e}");
    }

    #[derive(Debug, PartialEq, Clone, Copy)]
    enum Mode {
        Fast,
        Slow,
    }
    json_unit_enum!(Mode { Fast, Slow });

    #[test]
    fn enum_macro_roundtrip() {
        assert_eq!(to_string(&Mode::Fast), "\"Fast\"");
        assert_eq!(from_str::<Mode>("\"Slow\"").unwrap(), Mode::Slow);
        assert!(from_str::<Mode>("\"Medium\"").is_err());
    }

    #[test]
    fn pretty_output_is_indented_and_reparses() {
        let d = Demo {
            n: 2,
            name: "p".into(),
            ratio: 1.0,
            flags: vec![true],
        };
        let pretty = to_string_pretty(&d);
        assert!(pretty.contains("\n  \"n\": 2"), "{pretty}");
        assert_eq!(from_str::<Demo>(&pretty).unwrap(), d);
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(to_string(&f64::NAN), "null");
        assert_eq!(to_string(&f64::INFINITY), "null");
    }
}
