//! Strict recursive-descent JSON parser (RFC 8259) with a fixed nesting
//! limit so corrupted or hostile inputs fail with an error instead of a
//! stack overflow.

use crate::{Json, JsonError, Num};

const MAX_DEPTH: usize = 128;

/// Parse one JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    /// Error anchored at the current byte, reported as 1-based line/column.
    fn err(&self, msg: impl std::fmt::Display) -> JsonError {
        let (line, column) = self.line_column();
        JsonError::at(msg.to_string(), line, column)
    }

    /// 1-based (line, column) of the current position, counting `\n`s.
    fn line_column(&self) -> (usize, usize) {
        let upto = &self.bytes[..self.pos.min(self.bytes.len())];
        let line = 1 + upto.iter().filter(|&&b| b == b'\n').count();
        let line_start = upto
            .iter()
            .rposition(|&b| b == b'\n')
            .map_or(0, |i| i + 1);
        (line, self.pos - line_start + 1)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(format!("invalid literal (expected '{lit}')")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string().map_err(|e| e.with_context("object key"))?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Json::Object(pairs)),
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Json::Array(items)),
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // fast path: copy the unescaped run in one go
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // the input is valid UTF-8 (it came from &str) and we only
                // stopped on ASCII delimiters, so the run is valid UTF-8
                let run = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8 in string"))?;
                out.push_str(run);
            }
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hi = self.hex4()?;
                        let c = if (0xD800..0xDC00).contains(&hi) {
                            // surrogate pair
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.err("unpaired surrogate"));
                            }
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            let code =
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                            char::from_u32(code).ok_or_else(|| self.err("invalid codepoint"))?
                        } else if (0xDC00..0xE000).contains(&hi) {
                            return Err(self.err("unexpected low surrogate"));
                        } else {
                            char::from_u32(hi).ok_or_else(|| self.err("invalid codepoint"))?
                        };
                        out.push(c);
                    }
                    _ => return Err(self.err("invalid escape")),
                },
                Some(_) => return Err(self.err("control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self.bump().ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit"))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // integer part
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digits required after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digits required in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("non-ascii bytes in number"))?;
        if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(i) = stripped.parse::<u64>().map(|u| u as i128).map(|u| -u) {
                    if let Ok(i) = i64::try_from(i) {
                        return Ok(Json::Num(Num::I(i)));
                    }
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::Num(Num::U(u)));
            }
            // fall through to float on overflow
        }
        text.parse::<f64>()
            .map(|f| Json::Num(Num::F(f)))
            .map_err(|_| self.err("unparseable number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#" {"a": [1, -2.5, {"b": null}], "c": "xAy"} "#).unwrap();
        assert_eq!(v.get("c").unwrap().as_str().unwrap(), "xAy");
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_u64().unwrap(), 1);
        assert_eq!(arr[1].as_f64().unwrap(), -2.5);
        assert_eq!(arr[2].get("b"), Some(&Json::Null));
    }

    #[test]
    fn surrogate_pair_decodes() {
        let v = parse(r#""😀""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "😀");
    }

    #[test]
    fn rejects_garbage() {
        for bad in [
            "", "{", "[1,", "tru", "\"unterminated", "01", "1.", "{\"a\" 1}",
            "[1] tail", "nul", "+1", "'single'", "\u{1}",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing() {
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        let e = parse(&deep).unwrap_err();
        assert!(e.to_string().contains("nesting too deep"), "{e}");
    }

    #[test]
    fn integer_width_preserved() {
        assert_eq!(parse("18446744073709551615").unwrap().as_u64().unwrap(), u64::MAX);
        assert_eq!(
            parse("-9223372036854775808").unwrap().as_i64().unwrap(),
            i64::MIN
        );
        // beyond u64: degrades to float rather than failing
        assert!(parse("18446744073709551616").unwrap().as_f64().unwrap() > 1.8e19);
    }

    #[test]
    fn errors_carry_line_and_column() {
        // the '!' sits on line 3, column 8
        let e = parse("{\n  \"a\": 1,\n  \"b\": !\n}").unwrap_err();
        assert_eq!(e.position(), Some((3, 8)), "{e}");
        assert!(e.to_string().contains("line 3, column 8"), "{e}");
        // single-line input: column counts from 1
        let e = parse("[1, x]").unwrap_err();
        assert_eq!(e.position(), Some((1, 5)), "{e}");
    }

    #[test]
    fn exponents_parse() {
        assert_eq!(parse("1e3").unwrap().as_f64().unwrap(), 1000.0);
        assert_eq!(parse("-2.5E-2").unwrap().as_f64().unwrap(), -0.025);
    }
}
