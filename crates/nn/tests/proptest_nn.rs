//! Property-based tests for the NN toolkit: optimizer convergence on random
//! quadratics, layer shape algebra, loss-function identities. Ported to the
//! in-tree `lip_rng::prop_check!` harness (fixed seeds, exact replay).

use lip_autograd::{Graph, ParamStore};
use lip_nn::{Activation, AdamW, Linear, Mlp, Optimizer, Sgd};
use lip_rng::prop_check;
use lip_tensor::Tensor;

#[test]
fn sgd_descends_any_convex_quadratic() {
    prop_check!(cases = 16, seed = 0xA001, |g| {
        let target = g.f32_in(-5.0, 5.0);
        let start = g.f32_in(-5.0, 5.0);
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::scalar(start));
        let mut opt = Sgd::new(0.1, 0.0);
        for _ in 0..150 {
            let grads = {
                let mut g = Graph::new(&store);
                let wv = g.param(w);
                let t = g.constant(Tensor::scalar(target));
                let loss = g.mse_loss(wv, t);
                g.backward(loss)
            };
            grads.apply_to(&mut store);
            opt.step(&mut store);
        }
        assert!((store.value(w).item() - target).abs() < 1e-2);
    });
}

#[test]
fn adamw_descends_multidimensional_quadratics() {
    prop_check!(cases = 16, seed = 0xA002, |g| {
        let dim = g.usize_in(1, 6);
        let target = Tensor::randn(&[dim], g.rng());
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::randn(&[dim], g.rng()));
        let mut opt = AdamW::new(0.1, 0.0);
        let loss_at = |store: &ParamStore| {
            let mut g = Graph::new(store);
            let wv = g.param(w);
            let t = g.constant(target.clone());
            let l = g.mse_loss(wv, t);
            g.value(l).item()
        };
        let initial = loss_at(&store);
        for _ in 0..100 {
            let grads = {
                let mut g = Graph::new(&store);
                let wv = g.param(w);
                let t = g.constant(target.clone());
                let l = g.mse_loss(wv, t);
                g.backward(l)
            };
            grads.apply_to(&mut store);
            opt.step(&mut store);
        }
        assert!(loss_at(&store) < initial.max(1e-4), "loss did not fall");
    });
}

#[test]
fn linear_preserves_leading_shape() {
    prop_check!(cases = 16, seed = 0xA003, |g| {
        let b = g.usize_in(1, 5);
        let s = g.usize_in(1, 5);
        let fin = g.usize_in(1, 6);
        let fout = g.usize_in(1, 6);
        let mut store = ParamStore::new();
        let lin = Linear::new(&mut store, "l", fin, fout, true, g.rng());
        let mut graph = Graph::new(&store);
        let x = graph.constant(Tensor::zeros(&[b, s, fin]));
        let y = lin.forward(&mut graph, x);
        assert_eq!(graph.shape(y), &[b, s, fout]);
    });
}

#[test]
fn mlp_composition_matches_widths() {
    prop_check!(cases = 16, seed = 0xA004, |g| {
        let depth = g.usize_in(2, 5);
        let widths = g.vec_usize(depth, 1, 8);
        let mut store = ParamStore::new();
        let mlp = Mlp::new(&mut store, "m", &widths, Activation::Relu, g.rng());
        assert_eq!(mlp.in_features(), widths[0]);
        assert_eq!(mlp.out_features(), *widths.last().unwrap());
        assert_eq!(mlp.depth(), widths.len() - 1);
        let mut graph = Graph::new(&store);
        let x = graph.constant(Tensor::zeros(&[3, widths[0]]));
        let y = mlp.forward(&mut graph, x);
        assert_eq!(graph.shape(y), &[3, *widths.last().unwrap()]);
    });
}

#[test]
fn smooth_l1_between_mae_halved_and_mse_halved() {
    prop_check!(cases = 16, seed = 0xA005, |g| {
        // elementwise: ½e²/β ≤ smooth ≤ |e| for β = 1, and smooth → |e|−½ for
        // large errors; check the loss stays between ½·MSE and MAE
        let p = Tensor::randn(&[24], g.rng());
        let t = Tensor::randn(&[24], g.rng());
        let store = ParamStore::new();
        let mut graph = Graph::new(&store);
        let pv = graph.constant(p.clone());
        let tv = graph.constant(t.clone());
        let smooth = graph.smooth_l1_loss(pv, tv, 1.0);
        let mae = p.sub(&t).abs().mean().item();
        let mse = p.sub(&t).square().mean().item();
        let s = graph.value(smooth).item();
        assert!(s <= mae + 1e-5, "smooth {s} > mae {mae}");
        assert!(s <= 0.5 * mse + mae, "upper bound sanity");
        assert!(s >= 0.0);
    });
}

#[test]
fn grad_clip_never_increases_norm() {
    prop_check!(cases = 16, seed = 0xA006, |g| {
        use lip_nn::GradClip;
        let max_norm = g.f32_in(0.1, 10.0);
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::zeros(&[8]));
        store.accumulate_grad(w, &Tensor::randn(&[8], g.rng()).mul_scalar(5.0));
        let before = store.grad_l2_norm();
        GradClip::new(max_norm).apply(&mut store);
        let after = store.grad_l2_norm();
        assert!(after <= before + 1e-5);
        assert!(after <= max_norm + 1e-4);
    });
}
