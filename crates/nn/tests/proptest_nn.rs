//! Property-based tests for the NN toolkit: optimizer convergence on random
//! quadratics, layer shape algebra, loss-function identities.

use lip_autograd::{Graph, ParamStore};
use lip_nn::{Activation, AdamW, Linear, Mlp, Optimizer, Sgd};
use lip_tensor::Tensor;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn sgd_descends_any_convex_quadratic(
        target in -5.0f32..5.0,
        start in -5.0f32..5.0,
    ) {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::scalar(start));
        let mut opt = Sgd::new(0.1, 0.0);
        for _ in 0..150 {
            let grads = {
                let mut g = Graph::new(&store);
                let wv = g.param(w);
                let t = g.constant(Tensor::scalar(target));
                let loss = g.mse_loss(wv, t);
                g.backward(loss)
            };
            grads.apply_to(&mut store);
            opt.step(&mut store);
        }
        prop_assert!((store.value(w).item() - target).abs() < 1e-2);
    }

    #[test]
    fn adamw_descends_multidimensional_quadratics(
        seed in 0u64..300,
        dim in 1usize..6,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let target = Tensor::randn(&[dim], &mut rng);
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::randn(&[dim], &mut rng));
        let mut opt = AdamW::new(0.1, 0.0);
        let loss_at = |store: &ParamStore| {
            let mut g = Graph::new(store);
            let wv = g.param(w);
            let t = g.constant(target.clone());
            let l = g.mse_loss(wv, t);
            g.value(l).item()
        };
        let initial = loss_at(&store);
        for _ in 0..100 {
            let grads = {
                let mut g = Graph::new(&store);
                let wv = g.param(w);
                let t = g.constant(target.clone());
                let l = g.mse_loss(wv, t);
                g.backward(l)
            };
            grads.apply_to(&mut store);
            opt.step(&mut store);
        }
        prop_assert!(loss_at(&store) < initial.max(1e-4), "loss did not fall");
    }

    #[test]
    fn linear_preserves_leading_shape(
        b in 1usize..5,
        s in 1usize..5,
        fin in 1usize..6,
        fout in 1usize..6,
    ) {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let lin = Linear::new(&mut store, "l", fin, fout, true, &mut rng);
        let mut g = Graph::new(&store);
        let x = g.constant(Tensor::zeros(&[b, s, fin]));
        let y = lin.forward(&mut g, x);
        prop_assert_eq!(g.shape(y), &[b, s, fout]);
    }

    #[test]
    fn mlp_composition_matches_widths(
        widths in prop::collection::vec(1usize..8, 2..5),
    ) {
        let mut rng = StdRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let mlp = Mlp::new(&mut store, "m", &widths, Activation::Relu, &mut rng);
        prop_assert_eq!(mlp.in_features(), widths[0]);
        prop_assert_eq!(mlp.out_features(), *widths.last().unwrap());
        prop_assert_eq!(mlp.depth(), widths.len() - 1);
        let mut g = Graph::new(&store);
        let x = g.constant(Tensor::zeros(&[3, widths[0]]));
        let y = mlp.forward(&mut g, x);
        prop_assert_eq!(g.shape(y), &[3, *widths.last().unwrap()]);
    }

    #[test]
    fn smooth_l1_between_mae_halved_and_mse_halved(
        seed in 0u64..200,
    ) {
        // elementwise: ½e²/β ≤ smooth ≤ |e| for β = 1, and smooth → |e|−½ for
        // large errors; check the loss stays between ½·MSE and MAE
        let mut rng = StdRng::seed_from_u64(seed);
        let p = Tensor::randn(&[24], &mut rng);
        let t = Tensor::randn(&[24], &mut rng);
        let store = ParamStore::new();
        let mut g = Graph::new(&store);
        let pv = g.constant(p.clone());
        let tv = g.constant(t.clone());
        let smooth = g.smooth_l1_loss(pv, tv, 1.0);
        let mae = p.sub(&t).abs().mean().item();
        let mse = p.sub(&t).square().mean().item();
        let s = g.value(smooth).item();
        prop_assert!(s <= mae + 1e-5, "smooth {s} > mae {mae}");
        prop_assert!(s <= 0.5 * mse + mae, "upper bound sanity");
        prop_assert!(s >= 0.0);
    }

    #[test]
    fn grad_clip_never_increases_norm(
        seed in 0u64..200,
        max_norm in 0.1f32..10.0,
    ) {
        use lip_nn::GradClip;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::zeros(&[8]));
        store.accumulate_grad(w, &Tensor::randn(&[8], &mut rng).mul_scalar(5.0));
        let before = store.grad_l2_norm();
        GradClip::new(max_norm).apply(&mut store);
        let after = store.grad_l2_norm();
        prop_assert!(after <= before + 1e-5);
        prop_assert!(after <= max_norm + 1e-4);
    }
}
