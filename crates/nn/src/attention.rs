//! Multi-head scaled dot-product self-attention over `[batch, seq, dim]`.
//!
//! Used directly by LiPFormer's Inter-Patch / Cross-Patch mechanisms (with
//! the vanilla softmax attention of Eq. 2) and by every Transformer baseline.
//!
//! The head split/merge (`reshape → permute → reshape`) is pure layout
//! bookkeeping, recorded on the tape as zero-copy strided views; the only
//! data movement happens inside the matmul kernels, which pack their
//! operands once on demand.

use lip_autograd::{Graph, ParamStore, Var};
use lip_rng::Rng;

use crate::Linear;

/// Classic multi-head self-attention with separate Q/K/V projections and an
/// output projection.
#[derive(Debug, Clone)]
pub struct MultiHeadSelfAttention {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    heads: usize,
    dim: usize,
}

impl MultiHeadSelfAttention {
    /// `dim` must be divisible by `heads`.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        dim: usize,
        heads: usize,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(heads > 0 && dim.is_multiple_of(heads), "dim {dim} not divisible by heads {heads}");
        MultiHeadSelfAttention {
            wq: Linear::new(store, &format!("{name}.wq"), dim, dim, false, rng),
            wk: Linear::new(store, &format!("{name}.wk"), dim, dim, false, rng),
            wv: Linear::new(store, &format!("{name}.wv"), dim, dim, false, rng),
            wo: Linear::new(store, &format!("{name}.wo"), dim, dim, false, rng),
            heads,
            dim,
        }
    }

    /// Self-attention over `x: [batch, seq, dim] → [batch, seq, dim]`.
    pub fn forward(&self, g: &mut Graph, x: Var) -> Var {
        let shape = g.shape(x).to_vec();
        assert_eq!(shape.len(), 3, "attention expects [batch, seq, dim]");
        let (b, n, d) = (shape[0], shape[1], shape[2]);
        assert_eq!(d, self.dim, "attention width mismatch");
        let h = self.heads;
        let dh = d / h;

        let q = self.wq.forward(g, x);
        let k = self.wk.forward(g, x);
        let v = self.wv.forward(g, x);

        // [b, n, d] → [b, h, n, dh]
        let split = |g: &mut Graph, t: Var| {
            let r = g.reshape(t, &[b, n, h, dh]);
            g.permute(r, &[0, 2, 1, 3])
        };
        let qh = split(g, q);
        let kh = split(g, k);
        let vh = split(g, v);

        let kt = g.transpose(kh, 2, 3); // [b, h, dh, n]
        let scores = g.matmul(qh, kt); // [b, h, n, n]
        let scaled = g.mul_scalar(scores, 1.0 / (dh as f32).sqrt());
        let attn = g.softmax(scaled);
        let ctx = g.matmul(attn, vh); // [b, h, n, dh]

        let merged = g.permute(ctx, &[0, 2, 1, 3]); // [b, n, h, dh]
        let flat = g.reshape(merged, &[b, n, d]);
        self.wo.forward(g, flat)
    }

    /// Attention weights of the first head for introspection/visualization:
    /// returns the `[batch, heads, seq, seq]` tensor node.
    pub fn attention_weights(&self, g: &mut Graph, x: Var) -> Var {
        let shape = g.shape(x).to_vec();
        let (b, n, d) = (shape[0], shape[1], shape[2]);
        let (h, dh) = (self.heads, d / self.heads);
        let q = self.wq.forward(g, x);
        let k = self.wk.forward(g, x);
        let split = |g: &mut Graph, t: Var| {
            let r = g.reshape(t, &[b, n, h, dh]);
            g.permute(r, &[0, 2, 1, 3])
        };
        let qh = split(g, q);
        let kh = split(g, k);
        let kt = g.transpose(kh, 2, 3);
        let scores = g.matmul(qh, kt);
        let scaled = g.mul_scalar(scores, 1.0 / (dh as f32).sqrt());
        g.softmax(scaled)
    }

    /// Model width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Head count.
    pub fn heads(&self) -> usize {
        self.heads
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lip_autograd::gradcheck::check_gradients;
    use lip_tensor::Tensor;
    use lip_rng::rngs::StdRng;
    use lip_rng::SeedableRng;

    #[test]
    fn forward_preserves_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let attn = MultiHeadSelfAttention::new(&mut store, "a", 8, 2, &mut rng);
        let mut g = Graph::new(&store);
        let x = g.constant(Tensor::randn(&[3, 5, 8], &mut rng));
        let y = attn.forward(&mut g, x);
        assert_eq!(g.shape(y), &[3, 5, 8]);
    }

    #[test]
    fn attention_rows_are_distributions() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let attn = MultiHeadSelfAttention::new(&mut store, "a", 4, 2, &mut rng);
        let mut g = Graph::new(&store);
        let x = g.constant(Tensor::randn(&[1, 6, 4], &mut rng));
        let w = attn.attention_weights(&mut g, x);
        assert_eq!(g.shape(w), &[1, 2, 6, 6]);
        for row in g.value(w).data().chunks(6) {
            let sum: f32 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn permutation_equivariance() {
        // Self-attention without positional encoding is equivariant to a
        // permutation of the sequence axis.
        let mut rng = StdRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let attn = MultiHeadSelfAttention::new(&mut store, "a", 4, 1, &mut rng);
        let x = Tensor::randn(&[1, 3, 4], &mut rng);
        // swap positions 0 and 2
        let xp = Tensor::concat(
            &[
                &x.slice_axis(1, 2, 3),
                &x.slice_axis(1, 1, 2),
                &x.slice_axis(1, 0, 1),
            ],
            1,
        );
        let run = |input: &Tensor| {
            let mut g = Graph::new(&store);
            let xv = g.constant(input.clone());
            let y = attn.forward(&mut g, xv);
            g.value(y).clone()
        };
        let y = run(&x);
        let yp = run(&xp);
        let y_expect = Tensor::concat(
            &[
                &y.slice_axis(1, 2, 3),
                &y.slice_axis(1, 1, 2),
                &y.slice_axis(1, 0, 1),
            ],
            1,
        );
        let diff = yp.sub(&y_expect).abs().max_value();
        assert!(diff < 1e-4, "equivariance violated: {diff}");
    }

    #[test]
    fn gradients_check() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut store = ParamStore::new();
        let attn = MultiHeadSelfAttention::new(&mut store, "a", 4, 2, &mut rng);
        let x = Tensor::randn(&[2, 3, 4], &mut rng).mul_scalar(0.5);
        check_gradients(
            &mut store,
            &move |g| {
                let xv = g.constant(x.clone());
                let y = attn.forward(g, xv);
                let sq = g.square(y);
                g.mean(sq)
            },
            1e-2,
            3e-2,
        )
        .unwrap();
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn rejects_bad_heads() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut store = ParamStore::new();
        let _ = MultiHeadSelfAttention::new(&mut store, "a", 6, 4, &mut rng);
    }
}
