//! Inverted dropout with caller-owned randomness (reproducible training).

use lip_autograd::{Graph, Var};
use lip_tensor::Tensor;
use lip_rng::Rng;

/// Inverted dropout: at train time each element is zeroed with probability
/// `p` and survivors are scaled by `1/(1-p)`; at eval time it is the identity.
#[derive(Debug, Clone, Copy)]
pub struct Dropout {
    p: f32,
}

impl Dropout {
    /// `p` is the drop probability, in `[0, 1)`.
    pub fn new(p: f32) -> Self {
        assert!((0.0..1.0).contains(&p), "dropout p must be in [0,1), got {p}");
        Dropout { p }
    }

    /// Apply dropout. `training == false` (or `p == 0`) is a no-op.
    pub fn forward(&self, g: &mut Graph, x: Var, rng: &mut impl Rng, training: bool) -> Var {
        if !training || self.p == 0.0 {
            return x;
        }
        let scale = 1.0 / (1.0 - self.p);
        let shape = g.shape(x).to_vec();
        let n: usize = shape.iter().product();
        let mask: Vec<f32> = (0..n)
            .map(|_| if rng.gen::<f32>() < self.p { 0.0 } else { scale })
            .collect();
        g.dropout_mask(x, Tensor::from_vec(mask, &shape))
    }

    /// Drop probability.
    pub fn p(&self) -> f32 {
        self.p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lip_autograd::{Graph, ParamStore};
    use lip_rng::rngs::StdRng;
    use lip_rng::SeedableRng;

    #[test]
    fn eval_mode_is_identity() {
        let store = ParamStore::new();
        let mut g = Graph::new(&store);
        let mut rng = StdRng::seed_from_u64(1);
        let x = g.constant(Tensor::ones(&[4, 4]));
        let y = Dropout::new(0.5).forward(&mut g, x, &mut rng, false);
        assert_eq!(x, y);
    }

    #[test]
    fn train_mode_preserves_expectation() {
        let store = ParamStore::new();
        let mut g = Graph::new(&store);
        let mut rng = StdRng::seed_from_u64(2);
        let x = g.constant(Tensor::ones(&[100, 100]));
        let y = Dropout::new(0.3).forward(&mut g, x, &mut rng, true);
        let mean = g.value(y).mean().item();
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn surviving_elements_scaled() {
        let store = ParamStore::new();
        let mut g = Graph::new(&store);
        let mut rng = StdRng::seed_from_u64(3);
        let x = g.constant(Tensor::ones(&[64]));
        let y = Dropout::new(0.5).forward(&mut g, x, &mut rng, true);
        for &v in g.value(y).data() {
            assert!(v == 0.0 || (v - 2.0).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "must be in [0,1)")]
    fn rejects_p_one() {
        let _ = Dropout::new(1.0);
    }
}
