//! # lip-nn
//!
//! The neural-network toolkit of the LiPFormer reproduction: layers
//! (linear, MLP, embedding, dropout, layer norm, multi-head attention,
//! positional encoding, feed-forward blocks), loss functions (MSE / MAE /
//! Smooth-L1 / CLIP-style symmetric cross-entropy), optimizers (SGD / Adam /
//! AdamW), learning-rate schedules, gradient clipping and early stopping.
//!
//! Every layer follows one convention: parameters are registered in a shared
//! [`ParamStore`](lip_autograd::ParamStore) at construction, and
//! `forward(&self, g: &mut Graph, x: Var) -> Var` records the computation on
//! the tape. Stochastic layers (dropout) additionally take an explicit RNG
//! and a `training` flag so runs are reproducible end-to-end.

#![forbid(unsafe_code)]

pub mod activation;
pub mod attention;
pub mod dropout;
pub mod early_stopping;
pub mod embedding;
pub mod ffn;
pub mod layernorm;
pub mod linear;
pub mod loss;
pub mod mlp;
pub mod optimizer;
pub mod positional;
pub mod scheduler;

pub use activation::Activation;
pub use attention::MultiHeadSelfAttention;
pub use dropout::Dropout;
pub use early_stopping::EarlyStopping;
pub use embedding::Embedding;
pub use ffn::FeedForward;
pub use layernorm::LayerNorm;
pub use linear::Linear;
pub use mlp::Mlp;
pub use optimizer::{Adam, AdamW, GradClip, Optimizer, Sgd};
pub use scheduler::LrSchedule;
