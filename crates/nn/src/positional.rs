//! Positional encodings. LiPFormer eliminates these (its patch-wise
//! attentions carry order information); baselines (Informer, Autoformer,
//! vanilla Transformer) use them, and the `Attn(x + W^PE)` form of the paper
//! is reproduced by [`LearnedPositionalEncoding`].

use lip_autograd::{Graph, ParamId, ParamStore, Var};
use lip_tensor::Tensor;
use lip_rng::Rng;

/// The sinusoidal encoding of "Attention Is All You Need".
#[derive(Debug, Clone)]
pub struct SinusoidalPositionalEncoding {
    table: Tensor, // [max_len, dim]
    dim: usize,
}

impl SinusoidalPositionalEncoding {
    /// Precompute a `[max_len, dim]` table.
    pub fn new(max_len: usize, dim: usize) -> Self {
        let mut data = vec![0.0f32; max_len * dim];
        for pos in 0..max_len {
            for i in 0..dim {
                let angle =
                    pos as f32 / 10_000f32.powf((2 * (i / 2)) as f32 / dim as f32);
                data[pos * dim + i] = if i % 2 == 0 { angle.sin() } else { angle.cos() };
            }
        }
        SinusoidalPositionalEncoding {
            table: Tensor::from_vec(data, &[max_len, dim]),
            dim,
        }
    }

    /// Add the first `seq` rows to `x: [batch, seq, dim]`.
    pub fn forward(&self, g: &mut Graph, x: Var) -> Var {
        let shape = g.shape(x).to_vec();
        assert_eq!(shape.len(), 3, "PE expects [batch, seq, dim]");
        assert_eq!(shape[2], self.dim, "PE width mismatch");
        assert!(shape[1] <= self.table.shape()[0], "sequence longer than PE table");
        let pe = self.table.slice_axis(0, 0, shape[1]);
        let pe = g.constant(pe);
        g.add(x, pe)
    }
}

/// Trainable positional table `W^PE` (the paper's uniform stand-in for the
/// PE schemes of Informer/Autoformer/FEDformer).
#[derive(Debug, Clone)]
pub struct LearnedPositionalEncoding {
    table: ParamId,
    max_len: usize,
    dim: usize,
}

impl LearnedPositionalEncoding {
    /// Register a `[max_len, dim]` trainable table.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        max_len: usize,
        dim: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let table = store.add(
            format!("{name}.pe"),
            Tensor::randn(&[max_len, dim], rng).mul_scalar(0.02),
        );
        LearnedPositionalEncoding { table, max_len, dim }
    }

    /// Add the first `seq` rows to `x: [batch, seq, dim]`.
    pub fn forward(&self, g: &mut Graph, x: Var) -> Var {
        let shape = g.shape(x).to_vec();
        assert_eq!(shape.len(), 3, "PE expects [batch, seq, dim]");
        assert_eq!(shape[2], self.dim, "PE width mismatch");
        assert!(shape[1] <= self.max_len, "sequence longer than PE table");
        let table = g.param(self.table);
        let pe = g.slice_axis(table, 0, 0, shape[1]);
        g.add(x, pe)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lip_rng::rngs::StdRng;
    use lip_rng::SeedableRng;

    #[test]
    fn sinusoidal_first_row_is_sin_cos_of_zero() {
        let pe = SinusoidalPositionalEncoding::new(8, 4);
        let row0 = pe.table.slice_axis(0, 0, 1);
        assert_eq!(row0.to_vec(), vec![0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn sinusoidal_values_bounded() {
        let pe = SinusoidalPositionalEncoding::new(64, 16);
        assert!(pe.table.max_value() <= 1.0 && pe.table.min_value() >= -1.0);
    }

    #[test]
    fn sinusoidal_add_shapes() {
        let store = ParamStore::new();
        let pe = SinusoidalPositionalEncoding::new(16, 4);
        let mut g = Graph::new(&store);
        let x = g.constant(Tensor::zeros(&[2, 5, 4]));
        let y = pe.forward(&mut g, x);
        assert_eq!(g.shape(y), &[2, 5, 4]);
        // x was zero, so the output equals the PE rows for both batches
        let out = g.value(y);
        assert_eq!(out.data()[..20], out.data()[20..40]);
    }

    #[test]
    fn learned_pe_is_trainable() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let pe = LearnedPositionalEncoding::new(&mut store, "pe", 8, 4, &mut rng);
        assert_eq!(store.num_scalars(), 32);
        let mut g = Graph::new(&store);
        let x = g.constant(Tensor::zeros(&[1, 3, 4]));
        let y = pe.forward(&mut g, x);
        let loss = g.sum(y);
        let grads = g.backward(loss);
        let gt = grads.for_param(pe.table).unwrap();
        // first 3 rows get gradient 1, rest none
        assert_eq!(gt.slice_axis(0, 0, 3).sum().item(), 12.0);
        assert_eq!(gt.slice_axis(0, 3, 8).sum().item(), 0.0);
    }

    #[test]
    #[should_panic(expected = "longer than PE table")]
    fn rejects_overlong_sequence() {
        let store = ParamStore::new();
        let pe = SinusoidalPositionalEncoding::new(4, 2);
        let mut g = Graph::new(&store);
        let x = g.constant(Tensor::zeros(&[1, 5, 2]));
        let _ = pe.forward(&mut g, x);
    }
}
