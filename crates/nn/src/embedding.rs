//! Categorical embedding table — encodes the paper's *textual* weak labels
//! (weather condition, wind direction, holiday flags, …) into dense vectors.

use lip_autograd::{Graph, ParamId, ParamStore, Var};
use lip_tensor::Tensor;
use lip_rng::Rng;

/// A `[vocab, dim]` lookup table with gradient support via row gather.
#[derive(Debug, Clone)]
pub struct Embedding {
    table: ParamId,
    vocab: usize,
    dim: usize,
}

impl Embedding {
    /// Register a normally-initialized embedding table.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        vocab: usize,
        dim: usize,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(vocab > 0 && dim > 0, "embedding needs vocab > 0 and dim > 0");
        let table = store.add(
            format!("{name}.table"),
            Tensor::randn(&[vocab, dim], rng).mul_scalar(0.02),
        );
        Embedding { table, vocab, dim }
    }

    /// Look up `indices`, producing `[indices.len(), dim]`.
    pub fn forward(&self, g: &mut Graph, indices: &[usize]) -> Var {
        for &i in indices {
            assert!(i < self.vocab, "embedding index {i} out of vocab {}", self.vocab);
        }
        let table = g.param(self.table);
        g.gather_rows(table, indices)
    }

    /// Look up a batch of index rows, producing `[batch, seq, dim]`.
    pub fn forward_batch(&self, g: &mut Graph, batch_indices: &[Vec<usize>]) -> Var {
        let seq = batch_indices.first().map_or(0, Vec::len);
        let flat: Vec<usize> = batch_indices
            .iter()
            .inspect(|row| assert_eq!(row.len(), seq, "ragged embedding batch"))
            .flatten()
            .copied()
            .collect();
        let gathered = self.forward(g, &flat);
        g.reshape(gathered, &[batch_indices.len(), seq, self.dim])
    }

    /// Embedding width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lip_autograd::gradcheck::check_gradients;
    use lip_rng::rngs::StdRng;
    use lip_rng::SeedableRng;

    #[test]
    fn lookup_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let emb = Embedding::new(&mut store, "e", 10, 4, &mut rng);
        let mut g = Graph::new(&store);
        let out = emb.forward(&mut g, &[1, 3, 3, 9]);
        assert_eq!(g.shape(out), &[4, 4]);
    }

    #[test]
    fn batch_lookup_shapes() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let emb = Embedding::new(&mut store, "e", 5, 3, &mut rng);
        let mut g = Graph::new(&store);
        let out = emb.forward_batch(&mut g, &[vec![0, 1], vec![2, 4]]);
        assert_eq!(g.shape(out), &[2, 2, 3]);
    }

    #[test]
    fn repeated_indices_share_rows() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let emb = Embedding::new(&mut store, "e", 4, 2, &mut rng);
        let mut g = Graph::new(&store);
        let out = emb.forward(&mut g, &[2, 2]);
        let v = g.value(out);
        assert_eq!(v.data()[..2], v.data()[2..4]);
    }

    #[test]
    fn gradient_accumulates_over_repeats() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut store = ParamStore::new();
        let emb = Embedding::new(&mut store, "e", 3, 2, &mut rng);
        check_gradients(
            &mut store,
            &move |g| {
                let out = emb.forward(g, &[0, 0, 2]);
                let sq = g.square(out);
                g.mean(sq)
            },
            1e-2,
            2e-2,
        )
        .unwrap();
    }

    #[test]
    #[should_panic(expected = "out of vocab")]
    fn rejects_out_of_vocab() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut store = ParamStore::new();
        let emb = Embedding::new(&mut store, "e", 3, 2, &mut rng);
        let mut g = Graph::new(&store);
        let _ = emb.forward(&mut g, &[3]);
    }
}
