//! Layer normalization over the last axis. LiPFormer deliberately *removes*
//! this from its backbone (paper §III-C1); it exists here for the baseline
//! Transformers and for the +LN ablation variants (paper Table X).

use lip_autograd::{Graph, ParamId, ParamStore, Var};
use lip_tensor::Tensor;

/// `y = γ ⊙ (x − μ) / √(σ² + ε) + β`, with μ/σ² over the last axis.
#[derive(Debug, Clone)]
pub struct LayerNorm {
    gamma: ParamId,
    beta: ParamId,
    dim: usize,
    eps: f32,
}

impl LayerNorm {
    /// Register γ=1, β=0 parameters of width `dim`.
    pub fn new(store: &mut ParamStore, name: &str, dim: usize) -> Self {
        let gamma = store.add(format!("{name}.gamma"), Tensor::ones(&[dim]));
        let beta = store.add(format!("{name}.beta"), Tensor::zeros(&[dim]));
        LayerNorm {
            gamma,
            beta,
            dim,
            eps: 1e-5,
        }
    }

    /// Normalize the last axis of `x`.
    pub fn forward(&self, g: &mut Graph, x: Var) -> Var {
        let rank = g.shape(x).len();
        debug_assert_eq!(
            g.shape(x)[rank - 1],
            self.dim,
            "layer norm width mismatch"
        );
        let last = rank - 1;
        let mu = g.mean_axis(x, last);
        let centered = g.sub(x, mu);
        let sq = g.square(centered);
        let var = g.mean_axis(sq, last);
        let var_eps = g.add_scalar(var, self.eps);
        let std = g.sqrt(var_eps);
        let normed = g.div(centered, std);
        let gamma = g.param(self.gamma);
        let scaled = g.mul(normed, gamma);
        let beta = g.param(self.beta);
        g.add(scaled, beta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lip_autograd::gradcheck::check_gradients;
    use lip_rng::rngs::StdRng;
    use lip_rng::SeedableRng;

    #[test]
    fn output_rows_are_standardized() {
        let mut store = ParamStore::new();
        let ln = LayerNorm::new(&mut store, "ln", 4);
        let mut g = Graph::new(&store);
        let x = g.constant(Tensor::from_vec(
            vec![1.0, 2.0, 3.0, 4.0, -10.0, 0.0, 10.0, 20.0],
            &[2, 4],
        ));
        let y = ln.forward(&mut g, x);
        for row in g.value(y).data().chunks(4) {
            let mean: f32 = row.iter().sum::<f32>() / 4.0;
            let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-5, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "var {var}");
        }
    }

    #[test]
    fn gamma_beta_affect_output() {
        let mut store = ParamStore::new();
        let ln = LayerNorm::new(&mut store, "ln", 2);
        store.set_value(ln.gamma, Tensor::from_vec(vec![2.0, 2.0], &[2]));
        store.set_value(ln.beta, Tensor::from_vec(vec![1.0, 1.0], &[2]));
        let mut g = Graph::new(&store);
        let x = g.constant(Tensor::from_vec(vec![0.0, 2.0], &[1, 2]));
        let y = ln.forward(&mut g, x);
        // normalized row is (-1, 1) → scaled (−2, 2) → shifted (−1, 3)
        let out = g.value(y).to_vec();
        assert!((out[0] + 1.0).abs() < 1e-2 && (out[1] - 3.0).abs() < 1e-2, "{out:?}");
    }

    #[test]
    fn gradients_check() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut store = ParamStore::new();
        let ln = LayerNorm::new(&mut store, "ln", 3);
        let x = Tensor::randn(&[2, 4, 3], &mut rng);
        check_gradients(
            &mut store,
            &move |g| {
                let xv = g.constant(x.clone());
                let y = ln.forward(g, xv);
                let sq = g.square(y);
                g.mean(sq)
            },
            1e-2,
            3e-2,
        )
        .unwrap();
    }
}
