//! First-order optimizers over a [`ParamStore`]: SGD (with momentum), Adam,
//! and the paper's AdamW (decoupled weight decay), plus global-norm gradient
//! clipping.

use lip_autograd::{ParamId, ParamStore};
use lip_tensor::Tensor;

/// Common optimizer interface: consume accumulated gradients and update
/// parameter values in place (frozen parameters are skipped by the store).
pub trait Optimizer {
    /// Apply one update step from the gradients currently accumulated in
    /// `store`, then zero them.
    fn step(&mut self, store: &mut ParamStore);

    /// Current learning rate.
    fn lr(&self) -> f32;

    /// Override the learning rate (driven by schedulers).
    fn set_lr(&mut self, lr: f32);
}

/// Stochastic gradient descent with optional classical momentum.
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Option<Tensor>>,
}

impl Sgd {
    /// Plain SGD (`momentum = 0`) or heavy-ball momentum.
    pub fn new(lr: f32, momentum: f32) -> Self {
        assert!(lr > 0.0, "lr must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0,1)");
        Sgd {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, store: &mut ParamStore) {
        let ids: Vec<ParamId> = store.trainable_ids();
        self.velocity.resize(store.len(), None);
        for id in ids {
            let grad = store.grad(id).clone();
            let update = if self.momentum > 0.0 {
                let v = self.velocity[id.index()]
                    .get_or_insert_with(|| Tensor::zeros(grad.shape()));
                let mut nv = v.mul_scalar(self.momentum);
                nv.add_assign_scaled(&grad, 1.0);
                *v = nv.clone();
                nv
            } else {
                grad
            };
            let mut value = store.value(id).clone();
            value.add_assign_scaled(&update, -self.lr);
            store.set_value(id, value);
        }
        store.zero_grad();
    }

    fn lr(&self) -> f32 {
        self.lr
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }
}

struct AdamState {
    m: Tensor,
    v: Tensor,
}

/// Adam (Kingma & Ba). `weight_decay` here is L2-coupled (added to the
/// gradient), matching the original formulation.
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    decoupled: bool,
    t: u64,
    state: Vec<Option<AdamState>>,
}

impl Adam {
    /// Standard Adam with coupled L2 decay.
    pub fn new(lr: f32, weight_decay: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay,
            decoupled: false,
            t: 0,
            state: Vec::new(),
        }
    }
}

/// AdamW — Adam with *decoupled* weight decay, the optimizer the paper uses
/// for LiPFormer training (§IV-A2).
pub struct AdamW(Adam);

impl AdamW {
    /// AdamW with the given learning rate and decoupled decay.
    pub fn new(lr: f32, weight_decay: f32) -> Self {
        let mut inner = Adam::new(lr, weight_decay);
        inner.decoupled = true;
        AdamW(inner)
    }
}

impl Optimizer for AdamW {
    fn step(&mut self, store: &mut ParamStore) {
        self.0.step(store)
    }
    fn lr(&self) -> f32 {
        self.0.lr()
    }
    fn set_lr(&mut self, lr: f32) {
        self.0.set_lr(lr)
    }
}

impl Optimizer for Adam {
    fn step(&mut self, store: &mut ParamStore) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        self.state.resize_with(store.len(), || None);
        for id in store.trainable_ids() {
            let mut grad = store.grad(id).clone();
            let value = store.value(id).clone();
            if self.weight_decay > 0.0 && !self.decoupled {
                grad.add_assign_scaled(&value, self.weight_decay);
            }
            let st = self.state[id.index()].get_or_insert_with(|| AdamState {
                m: Tensor::zeros(grad.shape()),
                v: Tensor::zeros(grad.shape()),
            });
            // m ← β₁m + (1−β₁)g ; v ← β₂v + (1−β₂)g²
            let mut m = st.m.mul_scalar(self.beta1);
            m.add_assign_scaled(&grad, 1.0 - self.beta1);
            let mut v = st.v.mul_scalar(self.beta2);
            v.add_assign_scaled(&grad.square(), 1.0 - self.beta2);
            st.m = m.clone();
            st.v = v.clone();

            let mhat = m.mul_scalar(1.0 / bc1);
            let vhat = v.mul_scalar(1.0 / bc2);
            let denom = vhat.sqrt().add_scalar(self.eps);
            let step = mhat.div(&denom);

            let mut new_value = value;
            if self.weight_decay > 0.0 && self.decoupled {
                let decayed = new_value.mul_scalar(self.lr * self.weight_decay);
                new_value.add_assign_scaled(&decayed, -1.0);
            }
            new_value.add_assign_scaled(&step, -self.lr);
            store.set_value(id, new_value);
        }
        store.zero_grad();
    }

    fn lr(&self) -> f32 {
        self.lr
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Global-norm gradient clipping.
#[derive(Debug, Clone, Copy)]
pub struct GradClip {
    max_norm: f32,
}

impl GradClip {
    /// Clip the global gradient norm to `max_norm`.
    pub fn new(max_norm: f32) -> Self {
        assert!(max_norm > 0.0);
        GradClip { max_norm }
    }

    /// Rescale gradients in `store` if their global norm exceeds the bound.
    /// Returns the pre-clip norm.
    pub fn apply(&self, store: &mut ParamStore) -> f32 {
        let norm = store.grad_l2_norm();
        if norm > self.max_norm {
            store.scale_grads(self.max_norm / norm);
        }
        norm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lip_autograd::Graph;

    /// Minimize (w − 3)² and return the final w.
    fn optimize(opt: &mut dyn Optimizer, steps: usize) -> f32 {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::scalar(0.0));
        for _ in 0..steps {
            let mut g = Graph::new(&store);
            let wv = g.param(w);
            let target = g.constant(Tensor::scalar(3.0));
            let loss = g.mse_loss(wv, target);
            let grads = g.backward(loss);
            grads.apply_to(&mut store);
            opt.step(&mut store);
        }
        store.value(w).item()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let w = optimize(&mut Sgd::new(0.1, 0.0), 200);
        assert!((w - 3.0).abs() < 1e-3, "w = {w}");
    }

    #[test]
    fn momentum_converges() {
        let w = optimize(&mut Sgd::new(0.05, 0.9), 200);
        assert!((w - 3.0).abs() < 1e-2, "w = {w}");
    }

    #[test]
    fn adam_converges() {
        let w = optimize(&mut Adam::new(0.1, 0.0), 300);
        assert!((w - 3.0).abs() < 1e-2, "w = {w}");
    }

    #[test]
    fn adamw_converges() {
        let w = optimize(&mut AdamW::new(0.1, 0.0), 300);
        assert!((w - 3.0).abs() < 1e-2, "w = {w}");
    }

    #[test]
    fn adamw_decay_shrinks_unused_weights() {
        // A parameter with zero gradient should decay toward zero under AdamW.
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::scalar(1.0));
        let mut opt = AdamW::new(0.1, 0.5);
        for _ in 0..10 {
            store.zero_grad(); // zero gradient every step
            opt.step(&mut store);
        }
        let v = store.value(w).item();
        assert!(v < 0.7 && v > 0.0, "decayed value {v}");
    }

    #[test]
    fn frozen_params_not_updated() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::scalar(5.0));
        store.freeze(w);
        store.accumulate_grad(w, &Tensor::scalar(1.0));
        Sgd::new(0.5, 0.0).step(&mut store);
        assert_eq!(store.value(w).item(), 5.0);
    }

    #[test]
    fn grad_clip_rescales() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::zeros(&[2]));
        store.accumulate_grad(w, &Tensor::from_vec(vec![3.0, 4.0], &[2])); // norm 5
        let pre = GradClip::new(1.0).apply(&mut store);
        assert_eq!(pre, 5.0);
        assert!((store.grad_l2_norm() - 1.0).abs() < 1e-5);
        // direction preserved
        let g = store.grad(w).to_vec();
        assert!((g[0] / g[1] - 0.75).abs() < 1e-5);
    }

    #[test]
    fn lr_setter_roundtrip() {
        let mut opt = AdamW::new(0.01, 0.0);
        opt.set_lr(0.005);
        assert_eq!(opt.lr(), 0.005);
    }
}
