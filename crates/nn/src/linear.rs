//! Fully connected layer `y = x W (+ b)` applied to the last axis.

use lip_autograd::{Graph, ParamId, ParamStore, Var};
use lip_tensor::Tensor;
use lip_rng::Rng;

/// Affine map over the last axis of its input: `[.., in] → [.., out]`.
///
/// The weight is stored `[in, out]` so the forward pass is a plain (batched)
/// `x.matmul(w)` without a transpose.
#[derive(Debug, Clone)]
pub struct Linear {
    w: ParamId,
    b: Option<ParamId>,
    in_features: usize,
    out_features: usize,
}

impl Linear {
    /// Register a Kaiming-initialized linear layer in `store`.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_features: usize,
        out_features: usize,
        bias: bool,
        rng: &mut impl Rng,
    ) -> Self {
        let w = store.add(
            format!("{name}.weight"),
            Tensor::kaiming_uniform(in_features, out_features, rng),
        );
        let b = bias.then(|| {
            let bound = (1.0 / in_features as f32).sqrt();
            store.add(
                format!("{name}.bias"),
                Tensor::rand_uniform(&[out_features], -bound, bound, rng),
            )
        });
        Linear {
            w,
            b,
            in_features,
            out_features,
        }
    }

    /// Apply to `[.., in_features]`, producing `[.., out_features]`.
    pub fn forward(&self, g: &mut Graph, x: Var) -> Var {
        debug_assert_eq!(
            *g.shape(x).last().expect("linear input must have an axis"),
            self.in_features,
            "linear layer fed wrong feature width"
        );
        let w = g.param(self.w);
        let mut y = g.matmul(x, w);
        if let Some(b) = self.b {
            let bv = g.param(b);
            y = g.add(y, bv);
        }
        y
    }

    /// Input width.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output width.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Parameter handles (weight first, then bias if present).
    pub fn param_ids(&self) -> Vec<ParamId> {
        let mut ids = vec![self.w];
        ids.extend(self.b);
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lip_autograd::gradcheck::check_gradients;
    use lip_rng::rngs::StdRng;
    use lip_rng::SeedableRng;

    #[test]
    fn forward_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let lin = Linear::new(&mut store, "l", 4, 3, true, &mut rng);
        let mut g = Graph::new(&store);
        let x = g.constant(Tensor::ones(&[2, 5, 4]));
        let y = lin.forward(&mut g, x);
        assert_eq!(g.shape(y), &[2, 5, 3]);
        assert_eq!(store.num_scalars(), 4 * 3 + 3);
    }

    #[test]
    fn no_bias_variant() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let lin = Linear::new(&mut store, "l", 4, 4, false, &mut rng);
        assert_eq!(store.num_scalars(), 16);
        assert_eq!(lin.param_ids().len(), 1);
    }

    #[test]
    fn gradients_check() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let lin = Linear::new(&mut store, "l", 3, 2, true, &mut rng);
        let x = Tensor::randn(&[4, 3], &mut rng);
        check_gradients(
            &mut store,
            &move |g| {
                let xv = g.constant(x.clone());
                let y = lin.forward(g, xv);
                let sq = g.square(y);
                g.mean(sq)
            },
            1e-2,
            2e-2,
        )
        .unwrap();
    }

    #[test]
    fn linearity_in_input() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut store = ParamStore::new();
        let lin = Linear::new(&mut store, "l", 3, 3, false, &mut rng);
        let x = Tensor::randn(&[2, 3], &mut rng);
        let run = |input: Tensor| {
            let mut g = Graph::new(&store);
            let xv = g.constant(input);
            let y = lin.forward(&mut g, xv);
            g.value(y).clone()
        };
        let y1 = run(x.clone());
        let y2 = run(x.mul_scalar(2.0));
        let diff = y2.sub(&y1.mul_scalar(2.0));
        assert!(diff.abs().max_value() < 1e-5);
    }
}
