//! Loss helpers beyond the primitive graph losses: row normalization and the
//! paper's CLIP-style symmetric contrastive objective (§III-B).

use lip_autograd::{Graph, Var};

/// L2-normalize each row (last axis) of `x`, as CLIP does before computing
/// cosine-similarity logits.
pub fn l2_normalize_rows(g: &mut Graph, x: Var) -> Var {
    let rank = g.shape(x).len();
    let sq = g.square(x);
    let ss = g.sum_axis(sq, rank - 1);
    let ss_eps = g.add_scalar(ss, 1e-8);
    let norm = g.sqrt(ss_eps);
    g.div(x, norm)
}

/// The paper's symmetric cross-entropy over a batch of covariate/target
/// embedding pairs:
///
/// `logits = (V_T · V_Cᵀ) · e^t`, `labels = (1..b)`,
/// `L = ½ (CE_rows(logits) + CE_cols(logits))`.
///
/// `log_temp` is the trainable log-temperature node `t`. Rows of both inputs
/// are L2-normalized so the logits are scaled cosine similarities.
pub fn clip_symmetric_ce(g: &mut Graph, v_target: Var, v_covariate: Var, log_temp: Var) -> Var {
    let shape_t = g.shape(v_target).to_vec();
    let shape_c = g.shape(v_covariate).to_vec();
    assert_eq!(shape_t.len(), 2, "expected [batch, dim] target embeddings");
    assert_eq!(shape_t, shape_c, "encoder output shapes must match");
    let b = shape_t[0];
    assert!(b >= 2, "contrastive batch needs at least 2 pairs");

    let vt = l2_normalize_rows(g, v_target);
    let vc = l2_normalize_rows(g, v_covariate);
    let vct = g.transpose(vc, 0, 1);
    let sims = g.matmul(vt, vct); // [b, b] cosine similarities
    let temp = g.exp(log_temp); // scalar e^t
    let logits = g.mul(sims, temp);

    let labels: Vec<usize> = (0..b).collect();
    let loss_rows = g.cross_entropy_rows(logits, &labels);
    let logits_t = g.transpose(logits, 0, 1);
    let loss_cols = g.cross_entropy_rows(logits_t, &labels);
    let total = g.add(loss_rows, loss_cols);
    g.mul_scalar(total, 0.5)
}

/// The raw (temperature-scaled) logits matrix of the contrastive loss —
/// exposed separately so Figure 7's visualization can dump it.
pub fn clip_logits(g: &mut Graph, v_target: Var, v_covariate: Var, log_temp: Var) -> Var {
    let vt = l2_normalize_rows(g, v_target);
    let vc = l2_normalize_rows(g, v_covariate);
    let vct = g.transpose(vc, 0, 1);
    let sims = g.matmul(vt, vct);
    let temp = g.exp(log_temp);
    g.mul(sims, temp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lip_autograd::gradcheck::check_gradients;
    use lip_autograd::ParamStore;
    use lip_tensor::Tensor;
    use lip_rng::rngs::StdRng;
    use lip_rng::SeedableRng;

    #[test]
    fn normalized_rows_are_unit() {
        let store = ParamStore::new();
        let mut g = Graph::new(&store);
        let x = g.constant(Tensor::from_vec(vec![3.0, 4.0, 0.0, 5.0], &[2, 2]));
        let n = l2_normalize_rows(&mut g, x);
        for row in g.value(n).data().chunks(2) {
            let norm: f32 = row.iter().map(|v| v * v).sum::<f32>().sqrt();
            assert!((norm - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn perfect_alignment_gives_low_loss() {
        let mut rng = StdRng::seed_from_u64(1);
        let store = ParamStore::new();
        // orthogonal-ish embeddings aligned with themselves → diagonal wins
        let e = Tensor::randn(&[4, 16], &mut rng);
        let mut g = Graph::new(&store);
        let vt = g.constant(e.clone());
        let vc = g.constant(e.clone());
        let t = g.constant(Tensor::scalar(3.0)); // high temperature sharpens
        let aligned = clip_symmetric_ce(&mut g, vt, vc, t);

        let mut g2 = Graph::new(&store);
        let vt2 = g2.constant(e.clone());
        // misaligned: covariates shifted by one row
        let shifted = Tensor::concat(&[&e.slice_axis(0, 1, 4), &e.slice_axis(0, 0, 1)], 0);
        let vc2 = g2.constant(shifted);
        let t2 = g2.constant(Tensor::scalar(3.0));
        let misaligned = clip_symmetric_ce(&mut g2, vt2, vc2, t2);

        assert!(
            g.value(aligned).item() < g2.value(misaligned).item(),
            "aligned {} !< misaligned {}",
            g.value(aligned).item(),
            g2.value(misaligned).item()
        );
    }

    #[test]
    fn symmetric_in_its_arguments() {
        let mut rng = StdRng::seed_from_u64(2);
        let store = ParamStore::new();
        let a = Tensor::randn(&[3, 8], &mut rng);
        let b = Tensor::randn(&[3, 8], &mut rng);
        let run = |x: &Tensor, y: &Tensor| {
            let mut g = Graph::new(&store);
            let vx = g.constant(x.clone());
            let vy = g.constant(y.clone());
            let t = g.constant(Tensor::scalar(0.0));
            let l = clip_symmetric_ce(&mut g, vx, vy, t);
            g.value(l).item()
        };
        assert!((run(&a, &b) - run(&b, &a)).abs() < 1e-5);
    }

    #[test]
    fn gradients_flow_to_both_encoders_and_temperature() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let vt = store.add("vt", Tensor::randn(&[3, 4], &mut rng).mul_scalar(0.5));
        let vc = store.add("vc", Tensor::randn(&[3, 4], &mut rng).mul_scalar(0.5));
        let lt = store.add("log_temp", Tensor::scalar(0.5));
        check_gradients(
            &mut store,
            &move |g| {
                let t = g.param(vt);
                let c = g.param(vc);
                let tau = g.param(lt);
                clip_symmetric_ce(g, t, c, tau)
            },
            1e-2,
            3e-2,
        )
        .unwrap();
    }

    #[test]
    fn logits_shape_is_batch_square() {
        let mut rng = StdRng::seed_from_u64(4);
        let store = ParamStore::new();
        let mut g = Graph::new(&store);
        let vt = g.constant(Tensor::randn(&[5, 8], &mut rng));
        let vc = g.constant(Tensor::randn(&[5, 8], &mut rng));
        let t = g.constant(Tensor::scalar(0.0));
        let logits = clip_logits(&mut g, vt, vc, t);
        assert_eq!(g.shape(logits), &[5, 5]);
    }
}
