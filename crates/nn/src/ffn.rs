//! The classic Transformer position-wise feed-forward block (up-project,
//! activate, down-project). LiPFormer eliminates this (paper §III-C1); it is
//! used by the baselines and by the `+FFNs` ablation variants of Table X.

use lip_autograd::{Graph, ParamStore, Var};
use lip_rng::Rng;

use crate::{Activation, Linear};

/// `y = act(x W₁ + b₁) W₂ + b₂` with an expansion factor (paper counts its
/// cost as `O(8·hd²)` — i.e. the standard 4× expansion).
#[derive(Debug, Clone)]
pub struct FeedForward {
    up: Linear,
    down: Linear,
    activation: Activation,
}

impl FeedForward {
    /// Standard block with `hidden = expansion * dim`.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        dim: usize,
        expansion: usize,
        activation: Activation,
        rng: &mut impl Rng,
    ) -> Self {
        let hidden = dim * expansion;
        FeedForward {
            up: Linear::new(store, &format!("{name}.up"), dim, hidden, true, rng),
            down: Linear::new(store, &format!("{name}.down"), hidden, dim, true, rng),
            activation,
        }
    }

    /// Apply to the last axis.
    pub fn forward(&self, g: &mut Graph, x: Var) -> Var {
        let h = self.up.forward(g, x);
        let h = self.activation.apply(g, h);
        self.down.forward(g, h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lip_autograd::gradcheck::check_gradients;
    use lip_tensor::Tensor;
    use lip_rng::rngs::StdRng;
    use lip_rng::SeedableRng;

    #[test]
    fn preserves_width() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let ffn = FeedForward::new(&mut store, "f", 8, 4, Activation::Relu, &mut rng);
        let mut g = Graph::new(&store);
        let x = g.constant(Tensor::randn(&[2, 3, 8], &mut rng));
        let y = ffn.forward(&mut g, x);
        assert_eq!(g.shape(y), &[2, 3, 8]);
    }

    #[test]
    fn parameter_count_matches_paper_estimate() {
        // O(8·hd²): up is d×4d + 4d, down is 4d×d + d → 8d² + 5d
        let mut rng = StdRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let d = 16;
        let _ = FeedForward::new(&mut store, "f", d, 4, Activation::Relu, &mut rng);
        assert_eq!(store.num_scalars(), 8 * d * d + 5 * d);
    }

    #[test]
    fn gradients_check() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let ffn = FeedForward::new(&mut store, "f", 4, 2, Activation::Gelu, &mut rng);
        let x = Tensor::randn(&[3, 4], &mut rng).mul_scalar(0.5);
        check_gradients(
            &mut store,
            &move |g| {
                let xv = g.constant(x.clone());
                let y = ffn.forward(g, xv);
                let sq = g.square(y);
                g.mean(sq)
            },
            1e-2,
            3e-2,
        )
        .unwrap();
    }
}
