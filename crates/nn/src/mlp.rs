//! Multi-layer perceptron — the paper's workhorse replacement for heavy
//! Transformer components (single-layer MLPs stand in for FFNs).

use lip_autograd::{Graph, ParamStore, Var};
use lip_rng::Rng;

use crate::{Activation, Linear};

/// A stack of linear layers with an activation between consecutive layers
/// (never after the last one).
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Linear>,
    activation: Activation,
}

impl Mlp {
    /// `widths` lists every layer boundary: `[in, h1, ..., out]`.
    /// A two-element `widths` builds the paper's "simplified single-layer
    /// MLP"; longer lists build deeper stacks.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        widths: &[usize],
        activation: Activation,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(widths.len() >= 2, "Mlp needs at least [in, out] widths");
        let layers = widths
            .windows(2)
            .enumerate()
            .map(|(i, w)| Linear::new(store, &format!("{name}.{i}"), w[0], w[1], true, rng))
            .collect();
        Mlp { layers, activation }
    }

    /// Apply to the last axis of `x`.
    pub fn forward(&self, g: &mut Graph, x: Var) -> Var {
        let mut h = x;
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.forward(g, h);
            if i < last {
                h = self.activation.apply(g, h);
            }
        }
        h
    }

    /// Input width.
    pub fn in_features(&self) -> usize {
        self.layers[0].in_features()
    }

    /// Output width.
    pub fn out_features(&self) -> usize {
        self.layers.last().expect("non-empty").out_features()
    }

    /// Number of linear layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lip_autograd::gradcheck::check_gradients;
    use lip_tensor::Tensor;
    use lip_rng::rngs::StdRng;
    use lip_rng::SeedableRng;

    #[test]
    fn single_layer_is_linear() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let mlp = Mlp::new(&mut store, "m", &[3, 2], Activation::Relu, &mut rng);
        assert_eq!(mlp.depth(), 1);
        let mut g = Graph::new(&store);
        let x = g.constant(Tensor::ones(&[4, 3]));
        let y = mlp.forward(&mut g, x);
        assert_eq!(g.shape(y), &[4, 2]);
    }

    #[test]
    fn deep_stack_shapes_and_grads() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let mlp = Mlp::new(&mut store, "m", &[4, 8, 8, 2], Activation::Gelu, &mut rng);
        assert_eq!(mlp.depth(), 3);
        assert_eq!(mlp.in_features(), 4);
        assert_eq!(mlp.out_features(), 2);
        let x = Tensor::randn(&[3, 4], &mut rng);
        check_gradients(
            &mut store,
            &move |g| {
                let xv = g.constant(x.clone());
                let y = mlp.forward(g, xv);
                let sq = g.square(y);
                g.mean(sq)
            },
            1e-2,
            3e-2,
        )
        .unwrap();
    }

    #[test]
    #[should_panic(expected = "at least")]
    fn rejects_single_width() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let _ = Mlp::new(&mut store, "m", &[4], Activation::Relu, &mut rng);
    }
}
