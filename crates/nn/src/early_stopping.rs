//! Early stopping on validation loss — the paper trains for 10 epochs with
//! patience 3 and restores the best-validation checkpoint (§IV-A2).

/// Tracks the best validation score and signals when patience is exhausted.
#[derive(Debug, Clone)]
pub struct EarlyStopping {
    patience: usize,
    best: f32,
    best_epoch: usize,
    bad_epochs: usize,
    min_delta: f32,
}

impl EarlyStopping {
    /// Stop after `patience` consecutive epochs without improvement.
    pub fn new(patience: usize) -> Self {
        EarlyStopping {
            patience,
            best: f32::INFINITY,
            best_epoch: 0,
            bad_epochs: 0,
            min_delta: 0.0,
        }
    }

    /// Require at least `min_delta` improvement to reset patience.
    pub fn with_min_delta(mut self, min_delta: f32) -> Self {
        self.min_delta = min_delta;
        self
    }

    /// Report the validation loss of `epoch`. Returns `true` when this is a
    /// new best (caller should snapshot parameters).
    pub fn observe(&mut self, epoch: usize, val_loss: f32) -> bool {
        if val_loss < self.best - self.min_delta {
            self.best = val_loss;
            self.best_epoch = epoch;
            self.bad_epochs = 0;
            true
        } else {
            self.bad_epochs += 1;
            false
        }
    }

    /// True once `patience` epochs have passed without improvement.
    pub fn should_stop(&self) -> bool {
        self.bad_epochs >= self.patience
    }

    /// Best validation loss seen so far.
    pub fn best(&self) -> f32 {
        self.best
    }

    /// Epoch that produced the best loss.
    pub fn best_epoch(&self) -> usize {
        self.best_epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn improvement_resets_patience() {
        let mut es = EarlyStopping::new(2);
        assert!(es.observe(0, 1.0));
        assert!(!es.observe(1, 1.5));
        assert!(es.observe(2, 0.9)); // reset
        assert!(!es.should_stop());
        assert!(!es.observe(3, 1.0));
        assert!(!es.observe(4, 1.0));
        assert!(es.should_stop());
        assert_eq!(es.best_epoch(), 2);
        assert_eq!(es.best(), 0.9);
    }

    #[test]
    fn min_delta_requires_real_improvement() {
        let mut es = EarlyStopping::new(1).with_min_delta(0.1);
        assert!(es.observe(0, 1.0));
        // 0.95 improves by < min_delta → does not count
        assert!(!es.observe(1, 0.95));
        assert!(es.should_stop());
    }

    #[test]
    fn nan_is_never_best() {
        let mut es = EarlyStopping::new(3);
        assert!(es.observe(0, 0.5));
        assert!(!es.observe(1, f32::NAN));
        assert_eq!(es.best(), 0.5);
    }
}
