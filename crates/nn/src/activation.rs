//! Activation functions as a small enum so layer configs stay serializable.

use lip_autograd::{Graph, Var};

/// Pointwise nonlinearity selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Activation {
    /// Pass-through (purely linear stacks, as in DLinear).
    Identity,
    /// Rectified linear unit.
    #[default]
    Relu,
    /// Gaussian error linear unit (tanh approximation).
    Gelu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
}

lip_serde::json_unit_enum!(Activation {
    Identity,
    Relu,
    Gelu,
    Tanh,
    Sigmoid,
});

impl Activation {
    /// Record the activation on the tape.
    pub fn apply(self, g: &mut Graph, x: Var) -> Var {
        match self {
            Activation::Identity => x,
            Activation::Relu => g.relu(x),
            Activation::Gelu => g.gelu(x),
            Activation::Tanh => g.tanh(x),
            Activation::Sigmoid => g.sigmoid(x),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lip_autograd::ParamStore;
    use lip_tensor::Tensor;

    #[test]
    fn identity_is_noop() {
        let store = ParamStore::new();
        let mut g = Graph::new(&store);
        let x = g.constant(Tensor::from_vec(vec![-1.0, 2.0], &[2]));
        let y = Activation::Identity.apply(&mut g, x);
        assert_eq!(x, y);
    }

    #[test]
    fn relu_clamps_negatives() {
        let store = ParamStore::new();
        let mut g = Graph::new(&store);
        let x = g.constant(Tensor::from_vec(vec![-1.0, 2.0], &[2]));
        let y = Activation::Relu.apply(&mut g, x);
        assert_eq!(g.value(y).to_vec(), vec![0.0, 2.0]);
    }

    #[test]
    fn all_variants_preserve_shape() {
        let store = ParamStore::new();
        for act in [
            Activation::Identity,
            Activation::Relu,
            Activation::Gelu,
            Activation::Tanh,
            Activation::Sigmoid,
        ] {
            let mut g = Graph::new(&store);
            let x = g.constant(Tensor::ones(&[2, 3]));
            let y = act.apply(&mut g, x);
            assert_eq!(g.shape(y), &[2, 3]);
        }
    }

    #[test]
    fn serde_roundtrip() {
        let json = lip_serde::to_string(&Activation::Gelu);
        assert_eq!(json, "\"Gelu\"");
        let back: Activation = lip_serde::from_str(&json).unwrap();
        assert_eq!(back, Activation::Gelu);
    }
}
