//! Learning-rate schedules, driven per epoch by the trainers.

use lip_serde::{FromJson, Json, JsonError, ToJson};

/// Learning-rate schedule selector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LrSchedule {
    /// Fixed learning rate.
    Constant,
    /// Multiply by `gamma` every `every` epochs.
    StepDecay { every: usize, gamma: f32 },
    /// Cosine anneal from the base LR to `min_lr` over `total` epochs.
    Cosine { total: usize, min_lr: f32 },
}

// Externally tagged (the representation `serde` used): `"Constant"` for the
// unit variant, `{"StepDecay":{"every":..,"gamma":..}}` for data variants.
impl ToJson for LrSchedule {
    fn to_json(&self) -> Json {
        match *self {
            LrSchedule::Constant => Json::Str("Constant".to_string()),
            LrSchedule::StepDecay { every, gamma } => Json::Object(vec![(
                "StepDecay".to_string(),
                Json::Object(vec![
                    ("every".to_string(), every.to_json()),
                    ("gamma".to_string(), gamma.to_json()),
                ]),
            )]),
            LrSchedule::Cosine { total, min_lr } => Json::Object(vec![(
                "Cosine".to_string(),
                Json::Object(vec![
                    ("total".to_string(), total.to_json()),
                    ("min_lr".to_string(), min_lr.to_json()),
                ]),
            )]),
        }
    }
}

impl FromJson for LrSchedule {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        if let Ok(tag) = v.as_str() {
            return match tag {
                "Constant" => Ok(LrSchedule::Constant),
                other => Err(JsonError::new(format!("unknown LrSchedule '{other}'"))),
            };
        }
        if let Some(body) = v.get("StepDecay") {
            return Ok(LrSchedule::StepDecay {
                every: body.field("every")?,
                gamma: body.field("gamma")?,
            });
        }
        if let Some(body) = v.get("Cosine") {
            return Ok(LrSchedule::Cosine {
                total: body.field("total")?,
                min_lr: body.field("min_lr")?,
            });
        }
        Err(JsonError::new("unrecognized LrSchedule value"))
    }
}

impl LrSchedule {
    /// Learning rate for `epoch` (0-based) given the base rate.
    pub fn lr_at(&self, base: f32, epoch: usize) -> f32 {
        match *self {
            LrSchedule::Constant => base,
            LrSchedule::StepDecay { every, gamma } => {
                base * gamma.powi((epoch / every.max(1)) as i32)
            }
            LrSchedule::Cosine { total, min_lr } => {
                if total <= 1 {
                    return base;
                }
                let t = (epoch.min(total - 1)) as f32 / (total - 1) as f32;
                min_lr + 0.5 * (base - min_lr) * (1.0 + (std::f32::consts::PI * t).cos())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_never_changes() {
        let s = LrSchedule::Constant;
        assert_eq!(s.lr_at(0.01, 0), 0.01);
        assert_eq!(s.lr_at(0.01, 100), 0.01);
    }

    #[test]
    fn step_decay_halves() {
        let s = LrSchedule::StepDecay { every: 2, gamma: 0.5 };
        assert_eq!(s.lr_at(1.0, 0), 1.0);
        assert_eq!(s.lr_at(1.0, 1), 1.0);
        assert_eq!(s.lr_at(1.0, 2), 0.5);
        assert_eq!(s.lr_at(1.0, 5), 0.25);
    }

    #[test]
    fn cosine_endpoints() {
        let s = LrSchedule::Cosine { total: 10, min_lr: 0.001 };
        assert!((s.lr_at(0.1, 0) - 0.1).abs() < 1e-6);
        assert!((s.lr_at(0.1, 9) - 0.001).abs() < 1e-6);
        // monotone decreasing
        let mut prev = f32::INFINITY;
        for e in 0..10 {
            let lr = s.lr_at(0.1, e);
            assert!(lr <= prev);
            prev = lr;
        }
    }

    #[test]
    fn cosine_past_total_clamps() {
        let s = LrSchedule::Cosine { total: 5, min_lr: 0.0 };
        assert_eq!(s.lr_at(0.1, 50), s.lr_at(0.1, 4));
    }

    #[test]
    fn json_roundtrip_all_variants() {
        for s in [
            LrSchedule::Constant,
            LrSchedule::StepDecay { every: 3, gamma: 0.5 },
            LrSchedule::Cosine { total: 10, min_lr: 0.001 },
        ] {
            let text = lip_serde::to_string(&s);
            let back: LrSchedule = lip_serde::from_str(&text).unwrap();
            assert_eq!(back, s, "{text}");
        }
        assert_eq!(lip_serde::to_string(&LrSchedule::Constant), "\"Constant\"");
    }
}
