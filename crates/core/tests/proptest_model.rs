//! Property-based tests on LiPFormer's architectural invariants, on the
//! in-tree `lip_rng::prop_check!` harness (fixed seeds, exact replay).

use lip_autograd::Graph;
use lip_data::window::Batch;
use lip_data::CovariateSpec;
use lip_rng::prop_check;
use lip_rng::rngs::StdRng;
use lip_rng::SeedableRng;
use lip_tensor::Tensor;
use lipformer::{Forecaster, LiPFormer, LiPFormerConfig};

fn tiny_config(
    seq_len: usize,
    pred_len: usize,
    channels: usize,
    patch_len: usize,
) -> LiPFormerConfig {
    let mut c = LiPFormerConfig::small(seq_len, pred_len, channels);
    c.patch_len = patch_len;
    c.hidden = 8;
    c.heads = 2;
    c.encoder_hidden = 8;
    c.dropout = 0.0;
    c
}

fn batch_for(cfg: &LiPFormerConfig, b: usize, seed: u64) -> Batch {
    let mut rng = StdRng::seed_from_u64(seed);
    Batch {
        x: Tensor::randn(&[b, cfg.seq_len, cfg.channels], &mut rng),
        y: Tensor::randn(&[b, cfg.pred_len, cfg.channels], &mut rng),
        time_feats: Tensor::randn(&[b, cfg.pred_len, 4], &mut rng).mul_scalar(0.2),
        cov_numerical: None,
        cov_categorical: None,
    }
}

fn spec() -> CovariateSpec {
    CovariateSpec {
        numerical: 0,
        cardinalities: vec![],
        time_features: 4,
    }
}

#[test]
fn forward_shape_for_any_geometry() {
    prop_check!(cases = 12, seed = 0xC001, |g| {
        let n_patches = g.usize_in(2, 6);
        let patch_len = g.pick(&[2usize, 3, 4]);
        let pred_len = g.usize_in(1, 10);
        let channels = g.usize_in(1, 4);
        let b = g.usize_in(1, 4);
        let seed = g.u64_in(0, 100);
        let seq_len = n_patches * patch_len;
        let cfg = tiny_config(seq_len, pred_len, channels, patch_len);
        let model = LiPFormer::new(cfg.clone(), &spec(), seed);
        let batch = batch_for(&cfg, b, seed);
        let mut rng = StdRng::seed_from_u64(0);
        let mut graph = Graph::new(model.store());
        let y = model.forward(&mut graph, &batch, false, &mut rng);
        assert_eq!(graph.shape(y), &[b, pred_len, channels]);
        assert!(!graph.value(y).has_non_finite());
    });
}

#[test]
fn level_shift_equivariance_holds_universally() {
    prop_check!(cases = 12, seed = 0xC002, |g| {
        // instance norm ⇒ predict(x + k) == predict(x) + k for the base model
        let offset = g.f32_in(-50.0, 50.0);
        let seed = g.u64_in(0, 100);
        let cfg = tiny_config(12, 6, 2, 3);
        let model = LiPFormer::without_enriching(cfg.clone(), seed);
        let batch = batch_for(&cfg, 2, seed);
        let shifted = Batch {
            x: batch.x.add_scalar(offset),
            ..batch.clone()
        };
        let run = |b: &Batch| {
            let mut rng = StdRng::seed_from_u64(0);
            let mut graph = Graph::new(model.store());
            let y = model.forward(&mut graph, b, false, &mut rng);
            graph.value(y).clone()
        };
        let base = run(&batch);
        let moved = run(&shifted);
        let err = moved.sub(&base.add_scalar(offset)).abs().max_value();
        assert!(err < 2e-2 * (1.0 + offset.abs()), "equivariance error {err}");
    });
}

#[test]
fn eval_mode_is_deterministic() {
    prop_check!(cases = 12, seed = 0xC003, |g| {
        let seed = g.u64_in(0, 200);
        let cfg = tiny_config(12, 4, 1, 3);
        let model = LiPFormer::new(cfg.clone(), &spec(), seed);
        let batch = batch_for(&cfg, 2, seed);
        let run = |rng_seed: u64| {
            let mut rng = StdRng::seed_from_u64(rng_seed);
            let mut graph = Graph::new(model.store());
            let y = model.forward(&mut graph, &batch, false, &mut rng);
            graph.value(y).clone()
        };
        assert_eq!(run(1), run(12345));
    });
}

#[test]
fn gradients_are_finite_for_any_seed() {
    prop_check!(cases = 12, seed = 0xC004, |g| {
        let seed = g.u64_in(0, 100);
        let cfg = tiny_config(12, 4, 2, 3);
        let model = LiPFormer::new(cfg.clone(), &spec(), seed);
        let batch = batch_for(&cfg, 3, seed);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut graph = Graph::new(model.store());
        let pred = model.forward(&mut graph, &batch, true, &mut rng);
        let target = graph.constant(batch.y.clone());
        let loss = graph.smooth_l1_loss(pred, target, 1.0);
        let grads = graph.backward(loss);
        for id in model.store().ids() {
            if let Some(grad) = grads.for_param(id) {
                assert!(
                    !grad.has_non_finite(),
                    "non-finite grad on {}",
                    model.store().name(id)
                );
            }
        }
    });
}

#[test]
fn parameter_count_independent_of_channel_count_in_backbone() {
    prop_check!(cases = 12, seed = 0xC005, |g| {
        // channel independence: backbone weights are shared across channels,
        // so only the enriching mapping scales with c
        let c1 = g.usize_in(1, 4);
        let c2 = g.usize_in(4, 8);
        let base1 = LiPFormer::without_enriching(tiny_config(12, 4, c1, 3), 0);
        let base2 = LiPFormer::without_enriching(tiny_config(12, 4, c2, 3), 0);
        assert_eq!(base1.num_parameters(), base2.num_parameters());
    });
}
