//! Concurrent-reader guarantees: many threads decoding one checkpoint
//! (from the same path or one shared byte buffer) and parsing one shared
//! JSON document must all succeed and agree — the serving cache leans on
//! this when requests race a first load.

use std::sync::Arc;

use lip_data::CovariateSpec;
use lipformer::checkpoint::{self, load_bytes};
use lipformer::{Forecaster, LiPFormer, LiPFormerConfig};

fn spec() -> CovariateSpec {
    CovariateSpec { numerical: 0, cardinalities: vec![], time_features: 4 }
}

fn fixture(name: &str) -> (std::path::PathBuf, LiPFormerConfig) {
    let cfg = LiPFormerConfig::small(24, 8, 2);
    let model = LiPFormer::new(cfg.clone(), &spec(), 11);
    let dir = std::env::temp_dir()
        .join("lipformer_concurrent_load")
        .join(std::process::id().to_string());
    std::fs::create_dir_all(&dir).expect("fixture dir");
    let path = dir.join(name);
    checkpoint::save(&path, &cfg, model.store()).expect("save");
    (path, cfg)
}

#[test]
fn threads_racing_load_model_on_one_file_all_succeed() {
    let (path, cfg) = fixture("race_file.ckpt");
    let handles: Vec<_> = (0..8)
        .map(|_| {
            let path = path.clone();
            std::thread::spawn(move || {
                let model = checkpoint::load_model(&path, &spec()).expect("load_model");
                (model.num_parameters(), model.store().ids().count())
            })
        })
        .collect();
    let results: Vec<_> = handles.into_iter().map(|h| h.join().expect("reader")).collect();
    assert!(results.windows(2).all(|w| w[0] == w[1]), "readers disagree: {results:?}");
    assert_eq!(cfg.seq_len, 24);
}

#[test]
fn threads_decoding_one_shared_buffer_agree_bytewise() {
    let (path, _) = fixture("race_bytes.ckpt");
    let raw: Arc<Vec<u8>> = Arc::new(std::fs::read(&path).expect("read"));
    let handles: Vec<_> = (0..8)
        .map(|_| {
            let raw = Arc::clone(&raw);
            std::thread::spawn(move || {
                let (header, tensors) = load_bytes(&raw).expect("load_bytes");
                let bytes: Vec<u8> =
                    tensors.iter().flat_map(|t| t.to_bytes()).collect();
                (header.param_names.clone(), bytes)
            })
        })
        .collect();
    let mut results = handles.into_iter().map(|h| h.join().expect("decoder"));
    let first = results.next().expect("at least one reader");
    for (i, r) in results.enumerate() {
        assert_eq!(r.0, first.0, "reader {i} names diverge");
        assert_eq!(r.1, first.1, "reader {i} tensor bytes diverge");
    }
}

#[test]
fn threads_parsing_one_shared_json_document_agree() {
    // the serving path parses request JSON on many worker threads; pin
    // that lip-serde parsing is a pure function of the input bytes
    let cfg = LiPFormerConfig::small(48, 24, 3);
    let doc: Arc<String> = Arc::new(lip_serde::to_string_pretty(&cfg));
    let handles: Vec<_> = (0..8)
        .map(|_| {
            let doc = Arc::clone(&doc);
            std::thread::spawn(move || {
                let parsed: LiPFormerConfig =
                    lip_serde::from_str(&doc).expect("parse shared config");
                lip_serde::to_string(&parsed)
            })
        })
        .collect();
    let rendered: Vec<String> = handles.into_iter().map(|h| h.join().expect("parser")).collect();
    assert!(
        rendered.windows(2).all(|w| w[0] == w[1]),
        "concurrent parses rendered differently"
    );
}
