//! Finite-difference gradient checks routed through `lip-par`'s chunked
//! kernels. The fixtures are sized past `REDUCE_CHUNK` / `ELEMWISE_CHUNK` so
//! the forward loss and the backward accumulation (broadcast adjoints via
//! `reduce_to_shape`, softmax row kernels, axis reductions) genuinely run
//! the multi-chunk code paths — and every check executes under an
//! oversubscribed 4-thread budget so the pool fan-out itself is on the line,
//! not just the serial chunk loop.
//!
//! Parameters are kept tiny (a handful of scalars broadcast into the large
//! activations) so central differences stay cheap while the tensors they
//! flow through are large.

use lip_autograd::gradcheck::check_gradients;
use lip_autograd::ParamStore;
use lip_rng::rngs::StdRng;
use lip_rng::SeedableRng;
use lip_tensor::Tensor;

const EPS: f32 = 1e-2;
const TOL: f32 = 2e-2;

fn big_constant(shape: &[usize], seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    Tensor::randn(shape, &mut rng).mul_scalar(0.5)
}

fn small_param(store: &mut ParamStore, name: &str, shape: &[usize], seed: u64) -> lip_autograd::ParamId {
    let mut rng = StdRng::seed_from_u64(seed);
    store.add(name.to_string(), Tensor::randn(shape, &mut rng).mul_scalar(0.5))
}

/// Full-sum backward across multiple `REDUCE_CHUNK` partials: the loss is a
/// mean over 32k+ elements, and the broadcast adjoint for `w` funnels
/// through the chunked `reduce_to_shape` partial-accumulation path.
#[test]
fn mean_backward_through_chunked_tree_sum() {
    lip_par::with_threads(4, || {
        const { assert!(8192 * 4 > lip_par::REDUCE_CHUNK) };
        let mut store = ParamStore::new();
        let w = small_param(&mut store, "w", &[4], 21);
        let x = big_constant(&[8192, 4], 210);
        check_gradients(
            &mut store,
            &move |g| {
                let xv = g.constant(x.clone());
                let wv = g.param(w);
                let y = g.mul(xv, wv); // [8192, 4] ⊙ [4] → suffix broadcast
                g.mean(y)
            },
            EPS,
            TOL,
        )
        .unwrap();
    });
}

/// Softmax rows spanning several `ELEMWISE_CHUNK` windows; the bias's
/// gradient collapses a [4096, 16] adjoint back to [16] through the
/// parallel reduce_to_shape partials.
#[test]
fn softmax_backward_through_row_chunks() {
    lip_par::with_threads(4, || {
        const { assert!(4096 * 16 > lip_par::ELEMWISE_CHUNK) };
        let mut store = ParamStore::new();
        let b = small_param(&mut store, "bias", &[16], 22);
        let x = big_constant(&[4096, 16], 220);
        let c = big_constant(&[4096, 16], 221);
        check_gradients(
            &mut store,
            &move |g| {
                let xv = g.constant(x.clone());
                let bv = g.param(b);
                let cv = g.constant(c.clone());
                let z = g.add(xv, bv);
                let p = g.softmax(z);
                // weight the rows so the loss is not the constant 1/width
                let weighted = g.mul(p, cv);
                g.mean(weighted)
            },
            EPS,
            TOL,
        )
        .unwrap();
    });
}

/// Log-softmax variant of the same routing (different backward formula).
#[test]
fn log_softmax_backward_through_row_chunks() {
    lip_par::with_threads(4, || {
        let mut store = ParamStore::new();
        let b = small_param(&mut store, "bias", &[16], 23);
        let x = big_constant(&[4096, 16], 230);
        let c = big_constant(&[4096, 16], 231);
        check_gradients(
            &mut store,
            &move |g| {
                let xv = g.constant(x.clone());
                let bv = g.param(b);
                let cv = g.constant(c.clone());
                let z = g.add(xv, bv);
                let lp = g.log_softmax(z);
                let weighted = g.mul(lp, cv);
                g.mean(weighted)
            },
            EPS,
            TOL,
        )
        .unwrap();
    });
}

/// Axis reduction over a single outer row with a large inner extent — the
/// branch of `axis_accumulate` that splits the inner axis across chunks.
/// The `[2, 1]` parameter broadcasts through the general odometer path, so
/// its adjoint also runs the strided `reduce_to_shape` restart logic.
#[test]
fn sum_axis_backward_through_inner_split() {
    lip_par::with_threads(4, || {
        let inner = lip_par::ELEMWISE_CHUNK + 1000;
        let mut store = ParamStore::new();
        let w = small_param(&mut store, "w", &[2, 1], 24);
        let x = big_constant(&[2, inner], 240);
        check_gradients(
            &mut store,
            &move |g| {
                let xv = g.constant(x.clone());
                let wv = g.param(w);
                let y = g.mul(xv, wv); // [2, inner] ⊙ [2, 1] → odometer path
                let s = g.sum_axis(y, 0); // outer == 1 → inner-split branch
                g.mean(s)
            },
            EPS,
            TOL,
        )
        .unwrap();
    });
}

/// Axis reduction over many outer rows (the whole-row chunking branch),
/// stacked under a softmax so both parallel backward kernels compose.
#[test]
fn composed_axis_reduction_and_softmax_backward() {
    lip_par::with_threads(4, || {
        let mut store = ParamStore::new();
        let w = small_param(&mut store, "w", &[8], 25);
        let x = big_constant(&[3000, 12, 8], 250);
        check_gradients(
            &mut store,
            &move |g| {
                let xv = g.constant(x.clone());
                let wv = g.param(w);
                let y = g.mul(xv, wv);
                let m = g.mean_axis(y, 1); // [3000, 1, 8], outer chunking
                let p = g.softmax(m);
                g.mean(p)
            },
            EPS,
            TOL,
        )
        .unwrap();
    });
}
