//! Finite-difference gradient checks through the *strided backward paths*:
//! since layout ops became zero-copy views, the adjoints flowing through
//! `Permute` / `SliceAxis` / `BroadcastTo` / `Reshape` / `Unfold` nodes are
//! themselves strided views (or scatter-adds over overlapping windows).
//! These checks pin the whole chain numerically, parameter by parameter.

use lip_autograd::gradcheck::check_gradients;
use lip_autograd::{Graph, ParamStore};
use lip_rng::rngs::StdRng;
use lip_rng::SeedableRng;
use lip_tensor::Tensor;
use lipformer::patching::Patching;
use lipformer::revin::InstanceNorm;

const EPS: f32 = 1e-2;
const TOL: f32 = 2e-2;

fn seeded(shape: &[usize], seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    Tensor::randn(shape, &mut rng).mul_scalar(0.5)
}

#[test]
fn permute_slice_broadcast_chain_gradients() {
    // w [2,3,4] -> permute [4,2,3] -> slice axis0 1..3 -> mul by a
    // broadcast view -> mean. Every adjoint in this chain is a strided view.
    let mut store = ParamStore::new();
    let w = store.add("w", seeded(&[2, 3, 4], 31));
    let scale = store.add("scale", seeded(&[1, 1, 3], 32));
    check_gradients(
        &mut store,
        &move |g: &mut Graph| {
            let wv = g.param(w);
            let sv = g.param(scale);
            let p = g.permute(wv, &[2, 0, 1]); // [4, 2, 3]
            let s = g.slice_axis(p, 0, 1, 3); // [2, 2, 3]
            let b = g.broadcast_to(sv, &[2, 2, 3]);
            let m = g.mul(s, b);
            g.mean(m)
        },
        EPS,
        TOL,
    )
    .unwrap();
}

#[test]
fn overlapping_unfold_gradients_scatter_add_correctly() {
    // step < window: windows overlap, so the unfold adjoint must
    // scatter-ADD, not scatter-assign. A wrong rule fails this check on the
    // interior elements (which appear in several windows).
    let mut store = ParamStore::new();
    let w = store.add("w", seeded(&[2, 9, 1], 33));
    check_gradients(
        &mut store,
        &move |g: &mut Graph| {
            let wv = g.param(w);
            let u = g.unfold(wv, 1, 4, 2); // [2, 3, 1, 4]
            let sq = g.square(u);
            g.mean(sq)
        },
        EPS,
        TOL,
    )
    .unwrap();
}

#[test]
fn instance_norm_plus_strided_patching_gradients() {
    // The model-front chain: last-value normalization (slice view feeding a
    // broadcast subtraction) into overlapping patch extraction.
    let mut store = ParamStore::new();
    let w = store.add("w", seeded(&[2, 8, 2], 34));
    check_gradients(
        &mut store,
        &move |g: &mut Graph| {
            let wv = g.param(w);
            let (centered, _) = InstanceNorm.normalize(g, wv);
            let patched = Patching { patch_len: 4 }.apply_strided(g, centered, 2);
            let sq = g.square(patched);
            g.mean(sq)
        },
        EPS,
        TOL,
    )
    .unwrap();
}

#[test]
fn reshape_of_view_gradients() {
    // A reshape that must materialize (its input is a permuted view) still
    // has to route the adjoint back through the permute correctly.
    let mut store = ParamStore::new();
    let w = store.add("w", seeded(&[3, 4], 35));
    check_gradients(
        &mut store,
        &move |g: &mut Graph| {
            let wv = g.param(w);
            let p = g.permute(wv, &[1, 0]); // [4, 3] view
            let r = g.reshape(p, &[2, 6]);
            let sq = g.square(r);
            g.mean(sq)
        },
        EPS,
        TOL,
    )
    .unwrap();
}
