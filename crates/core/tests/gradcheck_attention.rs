//! Finite-difference gradient checks for LiPFormer's two attention blocks
//! (Cross-Patch and Inter-Patch), in both the full-attention configuration
//! and the Table XI linear-ablation variants.
//!
//! Each check builds a deterministic scalar loss (mean of the block output)
//! over a fixed random input and compares every parameter's analytic
//! gradient against central finite differences via
//! [`lip_autograd::gradcheck::check_gradients`].

use lip_autograd::gradcheck::check_gradients;
use lip_autograd::ParamStore;
use lip_rng::rngs::StdRng;
use lip_rng::SeedableRng;
use lip_tensor::Tensor;
use lipformer::cross_patch::CrossPatch;
use lipformer::inter_patch::InterPatch;

const EPS: f32 = 1e-2;
const TOL: f32 = 2e-2;

/// `x: [b·c, n, pl]` fixture with modest magnitude so the finite-difference
/// stencil stays in the well-conditioned regime of softmax.
fn trend_input(bc: usize, n: usize, pl: usize, seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    Tensor::randn(&[bc, n, pl], &mut rng).mul_scalar(0.5)
}

#[test]
fn cross_patch_attention_gradients_match_finite_differences() {
    let mut rng = StdRng::seed_from_u64(11);
    let mut store = ParamStore::new();
    let block = CrossPatch::new(&mut store, "cp", 4, 3, 4, 2, true, &mut rng);
    let x = trend_input(2, 4, 3, 101);
    check_gradients(
        &mut store,
        &move |g| {
            let xv = g.constant(x.clone());
            let out = block.forward(g, xv);
            g.mean(out)
        },
        EPS,
        TOL,
    )
    .unwrap();
}

#[test]
fn cross_patch_linear_ablation_gradients_match_finite_differences() {
    let mut rng = StdRng::seed_from_u64(12);
    let mut store = ParamStore::new();
    let block = CrossPatch::new(&mut store, "cp_lin", 4, 3, 4, 2, false, &mut rng);
    let x = trend_input(2, 4, 3, 102);
    check_gradients(
        &mut store,
        &move |g| {
            let xv = g.constant(x.clone());
            let out = block.forward(g, xv);
            g.mean(out)
        },
        EPS,
        TOL,
    )
    .unwrap();
}

#[test]
fn inter_patch_attention_gradients_match_finite_differences() {
    let mut rng = StdRng::seed_from_u64(13);
    let mut store = ParamStore::new();
    let block = InterPatch::new(&mut store, "ip", 4, 2, true, &mut rng);
    let h = trend_input(2, 4, 4, 103);
    check_gradients(
        &mut store,
        &move |g| {
            let hv = g.constant(h.clone());
            let out = block.forward(g, hv);
            g.mean(out)
        },
        EPS,
        TOL,
    )
    .unwrap();
}

#[test]
fn inter_patch_linear_ablation_gradients_match_finite_differences() {
    let mut rng = StdRng::seed_from_u64(14);
    let mut store = ParamStore::new();
    let block = InterPatch::new(&mut store, "ip_lin", 4, 2, false, &mut rng);
    let h = trend_input(2, 4, 4, 104);
    check_gradients(
        &mut store,
        &move |g| {
            let hv = g.constant(h.clone());
            let out = block.forward(g, hv);
            g.mean(out)
        },
        EPS,
        TOL,
    )
    .unwrap();
}

/// The two blocks composed, as they appear in the model (Eq. 1 then Eq. 2):
/// Cross-Patch output feeds Inter-Patch; gradients must flow through both.
#[test]
fn stacked_cross_then_inter_gradients_match_finite_differences() {
    let mut rng = StdRng::seed_from_u64(15);
    let mut store = ParamStore::new();
    let cross = CrossPatch::new(&mut store, "s.cp", 4, 3, 4, 2, true, &mut rng);
    let inter = InterPatch::new(&mut store, "s.ip", 4, 2, true, &mut rng);
    let x = trend_input(2, 4, 3, 105);
    check_gradients(
        &mut store,
        &move |g| {
            let xv = g.constant(x.clone());
            let mid = cross.forward(g, xv);
            let out = inter.forward(g, mid);
            g.mean(out)
        },
        EPS,
        TOL,
    )
    .unwrap();
}
