//! The [`Forecaster`] trait — the uniform interface the trainer, evaluator
//! and benchmark harness use for LiPFormer and every baseline model.

use lip_autograd::{Graph, ParamStore, Var};
use lip_data::window::Batch;
use lip_rng::rngs::StdRng;

/// A trainable multivariate forecaster.
///
/// Implementations register all parameters in an internal [`ParamStore`] and
/// record one forward pass per call on the provided tape.
pub trait Forecaster {
    /// Display name (used in result tables).
    fn name(&self) -> &str;

    /// The parameter store backing the model.
    fn store(&self) -> &ParamStore;

    /// Mutable access for optimizers and checkpointing.
    fn store_mut(&mut self) -> &mut ParamStore;

    /// Record a forward pass for `batch`, returning the `[b, L, c]`
    /// prediction node. `training` enables dropout; the RNG drives any
    /// stochastic layers so runs are reproducible.
    fn forward(&self, g: &mut Graph, batch: &Batch, training: bool, rng: &mut StdRng) -> Var;

    /// Number of trainable scalars (the paper's "parameters" column).
    fn num_parameters(&self) -> usize {
        self.store().num_scalars()
    }
}

impl Forecaster for Box<dyn Forecaster> {
    fn name(&self) -> &str {
        self.as_ref().name()
    }
    fn store(&self) -> &ParamStore {
        self.as_ref().store()
    }
    fn store_mut(&mut self) -> &mut ParamStore {
        self.as_mut().store_mut()
    }
    fn forward(&self, g: &mut Graph, batch: &Batch, training: bool, rng: &mut StdRng) -> Var {
        self.as_ref().forward(g, batch, training, rng)
    }
}

/// Models that carry the paper's weak-data-enriching dual encoder and can be
/// contrastively pre-trained (LiPFormer, and any baseline wrapped with
/// [`crate::plugin::WithCovariateEncoder`]).
pub trait WeaklySupervised: Forecaster {
    /// The symmetric contrastive pre-training loss for `batch`.
    fn contrastive_loss(&self, g: &mut Graph, batch: &Batch) -> Var;

    /// Freeze the dual encoders after pre-training (the Vector Mapping stays
    /// trainable).
    fn freeze_encoders(&mut self);
}
