//! Forecast accuracy metrics (paper §IV-A2: MSE and MAE on the standardized
//! scale) and batched model evaluation.

use lip_autograd::Graph;
use lip_data::window::WindowDataset;
use lip_tensor::Tensor;
use lip_rng::rngs::StdRng;
use lip_rng::SeedableRng;

use crate::forecaster::Forecaster;

/// Mean squared error between equally shaped tensors.
pub fn mse(pred: &Tensor, target: &Tensor) -> f32 {
    assert_eq!(pred.shape(), target.shape(), "mse shape mismatch");
    pred.sub(target).square().mean().item()
}

/// Mean absolute error between equally shaped tensors.
pub fn mae(pred: &Tensor, target: &Tensor) -> f32 {
    assert_eq!(pred.shape(), target.shape(), "mae shape mismatch");
    pred.sub(target).abs().mean().item()
}

/// Accuracy summary of one evaluation pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ForecastMetrics {
    pub mse: f32,
    pub mae: f32,
    /// Windows evaluated.
    pub count: usize,
}

impl ForecastMetrics {
    /// Evaluate `model` over every window of `ds` in inference mode.
    pub fn evaluate<M: Forecaster + ?Sized>(model: &M, ds: &WindowDataset, batch_size: usize) -> Self {
        assert!(!ds.is_empty(), "cannot evaluate on an empty split");
        let order: Vec<usize> = (0..ds.len()).collect();
        let mut rng = StdRng::seed_from_u64(0); // unused in eval mode
        let mut sq_sum = 0.0f64;
        let mut abs_sum = 0.0f64;
        let mut n_elems = 0.0f64;
        for chunk in WindowDataset::batch_indices(&order, batch_size) {
            let batch = ds.batch(&chunk);
            let mut g = Graph::new(model.store());
            let pred = model.forward(&mut g, &batch, false, &mut rng);
            let p = g.value(pred);
            let diff = p.sub(&batch.y);
            sq_sum += diff.data().iter().map(|&d| (d as f64) * d as f64).sum::<f64>();
            abs_sum += diff.data().iter().map(|&d| d.abs() as f64).sum::<f64>();
            n_elems += diff.numel() as f64;
        }
        ForecastMetrics {
            mse: (sq_sum / n_elems) as f32,
            mae: (abs_sum / n_elems) as f32,
            count: ds.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_mae_known_values() {
        let p = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        let t = Tensor::from_vec(vec![0.0, 2.0, 5.0], &[3]);
        assert!((mse(&p, &t) - 5.0 / 3.0).abs() < 1e-6);
        assert!((mae(&p, &t) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn perfect_prediction_is_zero() {
        let p = Tensor::arange(6).reshape(&[2, 3]);
        assert_eq!(mse(&p, &p), 0.0);
        assert_eq!(mae(&p, &p), 0.0);
    }

    #[test]
    fn mae_bounds_rmse() {
        // MAE ≤ RMSE always
        let p = Tensor::from_vec(vec![1.0, -2.0, 0.5, 3.0], &[4]);
        let t = Tensor::zeros(&[4]);
        assert!(mae(&p, &t) <= mse(&p, &t).sqrt() + 1e-6);
    }
}
