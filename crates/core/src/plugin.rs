//! Plug-and-play weak data enriching (paper §IV-E6, Table XII): wrap *any*
//! forecaster with the dual-encoder Covariate Encoder so its predictions are
//! guided by future weak labels — the transplant experiment that attaches
//! the module to Informer, Transformer and Autoformer.

use lip_autograd::{Graph, ParamStore, Var};
use lip_data::window::Batch;
use lip_data::CovariateSpec;
use lip_rng::rngs::StdRng;
use lip_rng::SeedableRng;

use crate::contrastive::WeakEnriching;
use crate::forecaster::{Forecaster, WeaklySupervised};

/// A forecaster augmented with the paper's weak-data-enriching module.
pub struct WithCovariateEncoder<M: Forecaster> {
    inner: M,
    enrich: WeakEnriching,
    name: String,
}

impl<M: Forecaster> WithCovariateEncoder<M> {
    /// Attach a Covariate Encoder to `inner`. The enriching parameters are
    /// registered in the inner model's store so one optimizer drives both.
    pub fn new(
        mut inner: M,
        spec: &CovariateSpec,
        horizon: usize,
        channels: usize,
        encoder_hidden: usize,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5bd1_e995);
        let enrich = WeakEnriching::new(
            inner.store_mut(),
            "plugin",
            spec,
            horizon,
            channels,
            encoder_hidden,
            1,
            &mut rng,
        );
        let name = format!("{}+CovEnc", inner.name());
        WithCovariateEncoder {
            inner,
            enrich,
            name,
        }
    }

    /// The wrapped model.
    pub fn inner(&self) -> &M {
        &self.inner
    }
}

impl<M: Forecaster> Forecaster for WithCovariateEncoder<M> {
    fn name(&self) -> &str {
        &self.name
    }

    fn store(&self) -> &ParamStore {
        self.inner.store()
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        self.inner.store_mut()
    }

    fn forward(&self, g: &mut Graph, batch: &Batch, training: bool, rng: &mut StdRng) -> Var {
        let y_base = self.inner.forward(g, batch, training, rng);
        self.enrich.guide(g, y_base, batch)
    }
}

impl<M: Forecaster> WeaklySupervised for WithCovariateEncoder<M> {
    fn contrastive_loss(&self, g: &mut Graph, batch: &Batch) -> Var {
        self.enrich.contrastive_loss(g, batch)
    }

    fn freeze_encoders(&mut self) {
        self.enrich.freeze_encoders(self.inner.store_mut());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lip_tensor::Tensor;

    /// A trivial last-value forecaster used to test the wrapper in isolation.
    struct Naive {
        store: ParamStore,
        pred_len: usize,
    }

    impl Naive {
        fn new(pred_len: usize) -> Self {
            Naive {
                store: ParamStore::new(),
                pred_len,
            }
        }
    }

    impl Forecaster for Naive {
        fn name(&self) -> &str {
            "Naive"
        }
        fn store(&self) -> &ParamStore {
            &self.store
        }
        fn store_mut(&mut self) -> &mut ParamStore {
            &mut self.store
        }
        fn forward(&self, g: &mut Graph, batch: &Batch, _t: bool, _r: &mut StdRng) -> Var {
            let shape = batch.x.shape().to_vec();
            let x = g.constant(batch.x.clone());
            let last = g.slice_axis(x, 1, shape[1] - 1, shape[1]);
            let b = g.broadcast_to(last, &[shape[0], self.pred_len, shape[2]]);
            // keep a node so the tape is non-trivial
            g.mul_scalar(b, 1.0)
        }
    }

    fn spec() -> CovariateSpec {
        CovariateSpec {
            numerical: 2,
            cardinalities: vec![3],
            time_features: 4,
        }
    }

    fn batch(b: usize, rng: &mut StdRng) -> Batch {
        Batch {
            x: Tensor::randn(&[b, 12, 2], rng),
            y: Tensor::randn(&[b, 4, 2], rng),
            time_feats: Tensor::randn(&[b, 4, 4], rng),
            cov_numerical: Some(Tensor::randn(&[b, 4, 2], rng)),
            cov_categorical: Some(vec![(0..b * 4).map(|i| i % 3).collect()]),
        }
    }

    #[test]
    fn wrapped_model_changes_predictions() {
        let mut rng = StdRng::seed_from_u64(1);
        let naive = Naive::new(4);
        let b = batch(3, &mut rng);
        let plain = {
            let mut g = Graph::new(naive.store());
            let y = naive.forward(&mut g, &b, false, &mut rng);
            g.value(y).clone()
        };
        let wrapped = WithCovariateEncoder::new(naive, &spec(), 4, 2, 8, 1);
        assert_eq!(wrapped.name(), "Naive+CovEnc");
        let guided = {
            let mut g = Graph::new(wrapped.store());
            let y = wrapped.forward(&mut g, &b, false, &mut rng);
            g.value(y).clone()
        };
        assert_eq!(guided.shape(), plain.shape());
        assert!(guided.sub(&plain).abs().max_value() > 1e-7);
    }

    #[test]
    fn contrastive_loss_and_freeze() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut wrapped = WithCovariateEncoder::new(Naive::new(4), &spec(), 4, 2, 8, 2);
        let b = batch(4, &mut rng);
        let mut g = Graph::new(wrapped.store());
        let loss = wrapped.contrastive_loss(&mut g, &b);
        assert!(g.value(loss).item().is_finite());
        drop(g);
        let before = wrapped.num_parameters();
        wrapped.freeze_encoders();
        assert!(wrapped.num_parameters() < before);
    }
}
