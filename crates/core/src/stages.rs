//! Stage-decomposed forecasting pipeline (ROADMAP item 4, after
//! *Decomposing the Time Series Forecasting Pipeline*): every forecaster is
//! a composition of a **representation** stage (instance normalization +
//! channel-independent patching), an **information-extraction** stage (the
//! paper's Cross-Patch/Inter-Patch attentions, or a PatchTST-style
//! Transformer encoder), and a **projection** stage (head + de-normalization).
//!
//! The canonical LiPFormer composition (`LastValue` / `LipAttention` /
//! `PatchHead`) is byte-identical to the pre-refactor monolith: parameter
//! registration order, RNG consumption, and the recorded tape are all
//! unchanged, which the golden-hash reproducibility tests pin down.
//!
//! Stage boundaries are `Var`-level: a representation hands the extraction a
//! `[b·c, n, pl]` token tensor plus the normalization state needed to invert
//! it, the extraction maps tokens to features `[b·c, n, hd]`, and the
//! projection maps features back to a `[b, L, c]` forecast.

use lip_autograd::{Graph, ParamStore, Var};
use lip_nn::positional::LearnedPositionalEncoding;
use lip_nn::{Activation, Dropout, FeedForward, LayerNorm, Linear, MultiHeadSelfAttention};
use lip_rng::rngs::StdRng;
use lip_rng::Rng;

use crate::config::{ExtractKind, LiPFormerConfig, ProjKind, ReprKind, StageSpec};
use crate::cross_patch::{compatible_heads, CrossPatch};
use crate::inter_patch::InterPatch;
use crate::patching::Patching;
use crate::revin::InstanceNorm;

/// The normalization state a representation stage saves so the projection
/// stage can invert it after prediction.
#[derive(Debug, Clone, Copy)]
pub enum NormState {
    /// Last-value instance normalization (the paper's §III-C1 anchor).
    LastValue {
        /// `[b, 1, c]` last observed value per window and channel.
        anchor: Var,
    },
    /// Mean/std statistical normalization (RevIN without affine).
    MeanStd {
        /// `[b, 1, c]` per-window channel means.
        mean: Var,
        /// `[b, 1, c]` per-window channel standard deviations.
        std: Var,
    },
}

impl NormState {
    /// Invert the normalization on a `[b, L, c]` prediction.
    pub fn denormalize(&self, g: &mut Graph, y: Var) -> Var {
        match self {
            NormState::LastValue { anchor } => g.add(y, *anchor),
            NormState::MeanStd { mean, std } => {
                let scaled = g.mul(y, *std);
                g.add(scaled, *mean)
            }
        }
    }
}

/// What a representation stage hands downstream: normalized patch tokens
/// plus everything the projection needs to assemble and invert the forecast.
#[derive(Debug, Clone, Copy)]
pub struct ReprOutput {
    /// `[b·c, n, pl]` channel-independent patch tokens.
    pub tokens: Var,
    /// Saved normalization state for the projection's inverse.
    pub norm: NormState,
    /// Batch size `b` of the raw input.
    pub batch: usize,
    /// Channel count `c` of the raw input.
    pub channels: usize,
}

/// Representation stage: `[b, T, c] → (tokens [b·c, n, pl], norm state)`.
pub trait Representation: std::fmt::Debug + Send + Sync {
    /// Normalize and patch a raw input window.
    fn forward(&self, g: &mut Graph, x: Var) -> ReprOutput;
}

/// Information-extraction stage: `[b·c, n, pl] → [b·c, n, hd]` features.
/// Consumes the training RNG (dropout) exactly as the monolith did.
pub trait Extraction: std::fmt::Debug + Send + Sync {
    /// Map patch tokens to hidden features.
    fn forward(&self, g: &mut Graph, tokens: Var, training: bool, rng: &mut StdRng) -> Var;
}

/// Projection stage: `[b·c, n, hd]` features `→ [b, L, c]` forecast,
/// including the inverse of the representation's normalization.
pub trait Projection: std::fmt::Debug + Send + Sync {
    /// Project features to a de-normalized forecast.
    fn forward(&self, g: &mut Graph, h: Var, repr: &ReprOutput) -> Var;
}

// ---------------------------------------------------------------------------
// Representation stages
// ---------------------------------------------------------------------------

/// Last-value instance normalization + non-overlapping patching — the
/// paper's representation (§III-C1).
#[derive(Debug, Clone)]
pub struct LastValueRepr {
    seq_len: usize,
    channels: usize,
    patching: Patching,
}

impl LastValueRepr {
    /// Stateless (no parameters); shapes come from `config`.
    pub fn new(config: &LiPFormerConfig) -> Self {
        LastValueRepr {
            seq_len: config.seq_len,
            channels: config.channels,
            patching: Patching {
                patch_len: config.patch_len,
            },
        }
    }
}

impl Representation for LastValueRepr {
    fn forward(&self, g: &mut Graph, x: Var) -> ReprOutput {
        let shape = g.shape(x).to_vec();
        let (b, c) = (shape[0], shape[2]);
        assert_eq!(shape[1], self.seq_len, "input length mismatch");
        assert_eq!(c, self.channels, "channel count mismatch");
        let (normed, anchor) = InstanceNorm.normalize(g, x);
        let tokens = self.patching.apply(g, normed);
        ReprOutput {
            tokens,
            norm: NormState::LastValue { anchor },
            batch: b,
            channels: c,
        }
    }
}

/// Mean/std statistical normalization (RevIN without affine, the
/// PatchTST/iTransformer treatment of distribution shift) + patching.
#[derive(Debug, Clone)]
pub struct MeanStdRepr {
    seq_len: usize,
    channels: usize,
    patching: Patching,
}

impl MeanStdRepr {
    /// Stateless (no parameters); shapes come from `config`.
    pub fn new(config: &LiPFormerConfig) -> Self {
        MeanStdRepr {
            seq_len: config.seq_len,
            channels: config.channels,
            patching: Patching {
                patch_len: config.patch_len,
            },
        }
    }
}

impl Representation for MeanStdRepr {
    fn forward(&self, g: &mut Graph, x: Var) -> ReprOutput {
        let shape = g.shape(x).to_vec();
        let (b, c) = (shape[0], shape[2]);
        assert_eq!(shape[1], self.seq_len, "input length mismatch");
        assert_eq!(c, self.channels, "channel count mismatch");
        let mean = g.mean_axis(x, 1); // [b, 1, c]
        let centered = g.sub(x, mean);
        let sq = g.square(centered);
        let var = g.mean_axis(sq, 1);
        let var_eps = g.add_scalar(var, 1e-5);
        let std = g.sqrt(var_eps);
        let normed = g.div(centered, std);
        let tokens = self.patching.apply(g, normed);
        ReprOutput {
            tokens,
            norm: NormState::MeanStd { mean, std },
            batch: b,
            channels: c,
        }
    }
}

// ---------------------------------------------------------------------------
// Extraction stages
// ---------------------------------------------------------------------------

/// LiPFormer's patch-wise attention backbone: Cross-Patch trend mixing →
/// Inter-Patch attention, with the Table X `+LN`/`+FFNs` ablation inserts.
#[derive(Debug, Clone)]
pub struct LipAttentionExtraction {
    cross: CrossPatch,
    inter: InterPatch,
    dropout: Dropout,
    ln_cross: Option<LayerNorm>,
    ln_inter: Option<LayerNorm>,
    ffn: Option<FeedForward>,
}

impl LipAttentionExtraction {
    /// Register the attention parameters (`cross`, `inter`) in `store`.
    /// The LN/FFN ablation parameters are registered separately by
    /// [`LipAttentionExtraction::finish`] so the canonical composition can
    /// interleave the projection head's registration between them, exactly
    /// matching the pre-refactor monolith's parameter and RNG order.
    pub fn begin(
        store: &mut ParamStore,
        name: &str,
        config: &LiPFormerConfig,
        rng: &mut impl Rng,
    ) -> LipAttentionParts {
        let n = config.num_patches();
        let cross = CrossPatch::new(
            store,
            &format!("{name}.cross"),
            n,
            config.patch_len,
            config.hidden,
            config.heads,
            config.use_cross_patch,
            rng,
        );
        let inter = InterPatch::new(
            store,
            &format!("{name}.inter"),
            config.hidden,
            config.heads,
            config.use_inter_patch,
            rng,
        );
        LipAttentionParts { cross, inter }
    }

    /// Register the LN/FFN ablation parameters and assemble the stage.
    pub fn finish(
        parts: LipAttentionParts,
        store: &mut ParamStore,
        name: &str,
        config: &LiPFormerConfig,
        rng: &mut impl Rng,
    ) -> Self {
        let ln_cross = config
            .with_layer_norm
            .then(|| LayerNorm::new(store, &format!("{name}.ln_cross"), config.hidden));
        let ln_inter = config
            .with_layer_norm
            .then(|| LayerNorm::new(store, &format!("{name}.ln_inter"), config.hidden));
        let ffn = config.with_ffn.then(|| {
            FeedForward::new(
                store,
                &format!("{name}.ffn"),
                config.hidden,
                4,
                Activation::Gelu,
                rng,
            )
        });
        LipAttentionExtraction {
            cross: parts.cross,
            inter: parts.inter,
            dropout: Dropout::new(config.dropout),
            ln_cross,
            ln_inter,
            ffn,
        }
    }

    /// Register all parameters contiguously (non-canonical compositions,
    /// where there is no legacy byte-order to preserve).
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        config: &LiPFormerConfig,
        rng: &mut impl Rng,
    ) -> Self {
        let parts = Self::begin(store, name, config, rng);
        Self::finish(parts, store, name, config, rng)
    }
}

/// The attention half of a [`LipAttentionExtraction`] under construction
/// (see [`LipAttentionExtraction::begin`]).
#[derive(Debug, Clone)]
pub struct LipAttentionParts {
    cross: CrossPatch,
    inter: InterPatch,
}

impl Extraction for LipAttentionExtraction {
    fn forward(&self, g: &mut Graph, tokens: Var, training: bool, rng: &mut StdRng) -> Var {
        // Cross-Patch trend mixing → [b·c, n, hd]
        let mut h = self.cross.forward(g, tokens);
        if let Some(ln) = &self.ln_cross {
            h = ln.forward(g, h);
        }
        h = self.dropout.forward(g, h, rng, training);

        // Inter-Patch attention (residual) → [b·c, n, hd]
        let mut h = self.inter.forward(g, h);
        if let Some(ffn) = &self.ffn {
            let f = ffn.forward(g, h);
            h = g.add(f, h);
        }
        if let Some(ln) = &self.ln_inter {
            h = ln.forward(g, h);
        }
        self.dropout.forward(g, h, rng, training)
    }
}

/// A post-norm Transformer encoder layer,
/// `h = LN(x + Attn(x)); out = LN(h + FFN(h))` — the LN+FFN structure
/// LiPFormer eliminates, kept as the PatchTST-style alternative backbone
/// (and reused by the baseline Transformers).
#[derive(Debug, Clone)]
pub struct EncoderBlock {
    attn: MultiHeadSelfAttention,
    ln1: LayerNorm,
    ffn: FeedForward,
    ln2: LayerNorm,
    dropout: Dropout,
}

impl EncoderBlock {
    /// Standard layer with 4× FFN expansion.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        dim: usize,
        heads: usize,
        dropout: f32,
        rng: &mut impl Rng,
    ) -> Self {
        EncoderBlock {
            attn: MultiHeadSelfAttention::new(store, &format!("{name}.attn"), dim, heads, rng),
            ln1: LayerNorm::new(store, &format!("{name}.ln1"), dim),
            ffn: FeedForward::new(store, &format!("{name}.ffn"), dim, 4, Activation::Gelu, rng),
            ln2: LayerNorm::new(store, &format!("{name}.ln2"), dim),
            dropout: Dropout::new(dropout),
        }
    }

    /// Apply to `[b, seq, dim]`.
    pub fn forward(&self, g: &mut Graph, x: Var, training: bool, rng: &mut StdRng) -> Var {
        let a = self.attn.forward(g, x);
        let a = self.dropout.forward(g, a, rng, training);
        let r1 = g.add(x, a);
        let h = self.ln1.forward(g, r1);
        let f = self.ffn.forward(g, h);
        let f = self.dropout.forward(g, f, rng, training);
        let r2 = g.add(h, f);
        self.ln2.forward(g, r2)
    }
}

/// PatchTST-style extraction: patch embedding + learned positional encoding
/// + a stack of post-norm Transformer encoder layers.
#[derive(Debug, Clone)]
pub struct TransformerExtraction {
    embed: Linear,
    pe: LearnedPositionalEncoding,
    layers: Vec<EncoderBlock>,
}

impl TransformerExtraction {
    /// Register embedding (`{name}.embed`), positional table (`{name}.pe`)
    /// and `depth` encoder layers (`{name}.layer{i}`) in `store`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        patch_len: usize,
        dim: usize,
        heads: usize,
        depth: usize,
        num_patches: usize,
        dropout: f32,
        rng: &mut impl Rng,
    ) -> Self {
        let embed = Linear::new(store, &format!("{name}.embed"), patch_len, dim, true, rng);
        let pe = LearnedPositionalEncoding::new(store, name, num_patches, dim, rng);
        let layers = (0..depth)
            .map(|i| EncoderBlock::new(store, &format!("{name}.layer{i}"), dim, heads, dropout, rng))
            .collect();
        TransformerExtraction { embed, pe, layers }
    }

    /// The composed-model construction: widths and depth from `config`.
    pub fn from_config(
        store: &mut ParamStore,
        name: &str,
        config: &LiPFormerConfig,
        rng: &mut impl Rng,
    ) -> Self {
        Self::new(
            store,
            name,
            config.patch_len,
            config.hidden,
            compatible_heads(config.hidden, config.heads),
            config.stages.depth,
            config.num_patches(),
            config.dropout,
            rng,
        )
    }
}

impl Extraction for TransformerExtraction {
    fn forward(&self, g: &mut Graph, tokens: Var, training: bool, rng: &mut StdRng) -> Var {
        let mut h = self.embed.forward(g, tokens);
        h = self.pe.forward(g, h);
        for layer in &self.layers {
            h = layer.forward(g, h, training, rng);
        }
        h
    }
}

// ---------------------------------------------------------------------------
// Projection stages
// ---------------------------------------------------------------------------

/// LiPFormer's two single-layer MLP heads: token axis `n → nt`, feature axis
/// `hd → pl`, then un-patch, trim the horizon, and de-normalize.
#[derive(Debug, Clone)]
pub struct PatchHeadProjection {
    /// Head stage 1: token axis `n → nt`.
    head_tokens: Linear,
    /// Head stage 2: feature axis `hd → pl`.
    head_features: Linear,
    patch_len: usize,
    pred_len: usize,
    num_target_patches: usize,
    patching: Patching,
}

impl PatchHeadProjection {
    /// Register both heads in `store` and damp the output projection: with
    /// instance normalization a near-zero head makes the initial forecast
    /// the "repeat last value" naive predictor, a far better starting point
    /// than a random projection of random attention features.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        config: &LiPFormerConfig,
        rng: &mut impl Rng,
    ) -> Self {
        let n = config.num_patches();
        let nt = config.num_target_patches();
        let head_tokens = Linear::new(store, &format!("{name}.head_tokens"), n, nt, true, rng);
        let head_features = Linear::new(
            store,
            &format!("{name}.head_features"),
            config.hidden,
            config.patch_len,
            true,
            rng,
        );
        for id in head_features.param_ids() {
            let damped = store.value(id).mul_scalar(0.05);
            store.set_value(id, damped);
        }
        PatchHeadProjection {
            head_tokens,
            head_features,
            patch_len: config.patch_len,
            pred_len: config.pred_len,
            num_target_patches: nt,
            patching: Patching {
                patch_len: config.patch_len,
            },
        }
    }
}

impl Projection for PatchHeadProjection {
    fn forward(&self, g: &mut Graph, h: Var, repr: &ReprOutput) -> Var {
        // head: [b·c, n, hd] → [b·c, hd, n] → n→nt → [b·c, nt, hd] → hd→pl
        let swapped = g.transpose(h, 1, 2);
        let tokens = self.head_tokens.forward(g, swapped); // [b·c, hd, nt]
        let back = g.transpose(tokens, 1, 2); // [b·c, nt, hd]
        let patches_out = self.head_features.forward(g, back); // [b·c, nt, pl]

        // flatten target patches and trim the horizon
        let (b, c) = (repr.batch, repr.channels);
        let flat = g.reshape(patches_out, &[b * c, self.num_target_patches * self.patch_len]);
        let trimmed = g.slice_axis(flat, 1, 0, self.pred_len);

        // back to [b, L, c] and denormalize
        let merged = self.patching.merge_channels(g, trimmed, b, c);
        repr.norm.denormalize(g, merged)
    }
}

/// PatchTST's flatten head: concatenate all patch features and map them to
/// the horizon with one linear layer, `[b·c, n·hd] → [b·c, L]`.
#[derive(Debug, Clone)]
pub struct FlattenLinearProjection {
    head: Linear,
    num_patches: usize,
    hidden: usize,
    patching: Patching,
}

impl FlattenLinearProjection {
    /// Register the flatten head (`{name}.head`) in `store`, damped like the
    /// patch head so training starts from the naive predictor.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        config: &LiPFormerConfig,
        rng: &mut impl Rng,
    ) -> Self {
        let n = config.num_patches();
        let head = Linear::new(
            store,
            &format!("{name}.head"),
            n * config.hidden,
            config.pred_len,
            true,
            rng,
        );
        for id in head.param_ids() {
            let damped = store.value(id).mul_scalar(0.05);
            store.set_value(id, damped);
        }
        FlattenLinearProjection {
            head,
            num_patches: n,
            hidden: config.hidden,
            patching: Patching {
                patch_len: config.patch_len,
            },
        }
    }
}

impl Projection for FlattenLinearProjection {
    fn forward(&self, g: &mut Graph, h: Var, repr: &ReprOutput) -> Var {
        let (b, c) = (repr.batch, repr.channels);
        let flat = g.reshape(h, &[b * c, self.num_patches * self.hidden]);
        let y = self.head.forward(g, flat); // [b·c, L]
        let merged = self.patching.merge_channels(g, y, b, c);
        repr.norm.denormalize(g, merged)
    }
}

// ---------------------------------------------------------------------------
// Composition
// ---------------------------------------------------------------------------

/// A fully built stage triple, ready to drop into a `ComposedForecaster`.
#[derive(Debug)]
pub struct StageSet {
    /// Representation stage.
    pub repr: Box<dyn Representation>,
    /// Information-extraction stage.
    pub extract: Box<dyn Extraction>,
    /// Projection stage.
    pub project: Box<dyn Projection>,
}

/// Build the stage triple `config.stages` describes, registering all stage
/// parameters under `name` in `store`.
///
/// For the canonical `LipAttention`/`PatchHead` pair this registers in the
/// pre-refactor monolith's exact order (cross → inter → head_tokens →
/// head_features → ln_cross → ln_inter → ffn) so parameter ids, names, and
/// RNG consumption — and therefore every trained byte — are unchanged.
pub fn build_stages(
    store: &mut ParamStore,
    name: &str,
    config: &LiPFormerConfig,
    rng: &mut impl Rng,
) -> StageSet {
    config.validate();
    let repr: Box<dyn Representation> = match config.stages.representation {
        ReprKind::LastValue => Box::new(LastValueRepr::new(config)),
        ReprKind::MeanStd => Box::new(MeanStdRepr::new(config)),
    };
    let (extract, project): (Box<dyn Extraction>, Box<dyn Projection>) =
        match (config.stages.extraction, config.stages.projection) {
            (ExtractKind::LipAttention, ProjKind::PatchHead) => {
                // legacy interleaved order — see the doc comment above
                let parts = LipAttentionExtraction::begin(store, name, config, rng);
                let project = PatchHeadProjection::new(store, name, config, rng);
                let extract = LipAttentionExtraction::finish(parts, store, name, config, rng);
                (Box::new(extract), Box::new(project))
            }
            (ExtractKind::LipAttention, ProjKind::FlattenLinear) => (
                Box::new(LipAttentionExtraction::new(store, name, config, rng)),
                Box::new(FlattenLinearProjection::new(store, name, config, rng)),
            ),
            (ExtractKind::PatchTst, ProjKind::PatchHead) => (
                Box::new(TransformerExtraction::from_config(store, name, config, rng)),
                Box::new(PatchHeadProjection::new(store, name, config, rng)),
            ),
            (ExtractKind::PatchTst, ProjKind::FlattenLinear) => (
                Box::new(TransformerExtraction::from_config(store, name, config, rng)),
                Box::new(FlattenLinearProjection::new(store, name, config, rng)),
            ),
        };
    StageSet {
        repr,
        extract,
        project,
    }
}

/// Every registered stage composition, by name. These are the compositions
/// `lip-analyze --verify-plan` sweeps, `lip-exec` differential-tests, and
/// the model registry exposes; adding a pair here enrolls it in all three.
pub fn registered_compositions() -> Vec<(&'static str, StageSpec)> {
    vec![
        ("default", StageSpec::default()),
        (
            "revin",
            StageSpec {
                representation: ReprKind::MeanStd,
                ..StageSpec::default()
            },
        ),
        (
            "flat-head",
            StageSpec {
                projection: ProjKind::FlattenLinear,
                ..StageSpec::default()
            },
        ),
        (
            "tst",
            StageSpec {
                representation: ReprKind::MeanStd,
                extraction: ExtractKind::PatchTst,
                projection: ProjKind::FlattenLinear,
                depth: 2,
            },
        ),
        (
            "tst-patch-head",
            StageSpec {
                representation: ReprKind::LastValue,
                extraction: ExtractKind::PatchTst,
                projection: ProjKind::PatchHead,
                depth: 2,
            },
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use lip_rng::SeedableRng;
    use lip_tensor::Tensor;

    fn cfg(spec: StageSpec) -> LiPFormerConfig {
        let mut c = LiPFormerConfig::small(24, 8, 2);
        c.patch_len = 6;
        c.hidden = 8;
        c.heads = 2;
        c.dropout = 0.1;
        c.stages = spec;
        c
    }

    #[test]
    fn every_registered_composition_forwards() {
        for (label, spec) in registered_compositions() {
            let c = cfg(spec);
            let mut store = ParamStore::new();
            let mut rng = StdRng::seed_from_u64(1);
            let stages = build_stages(&mut store, "base", &c, &mut rng);
            let mut g = Graph::new(&store);
            let x = g.constant(Tensor::randn(&[3, 24, 2], &mut rng));
            let repr = stages.repr.forward(&mut g, x);
            assert_eq!(g.shape(repr.tokens), &[6, 4, 6], "{label}: token shape");
            let h = stages.extract.forward(&mut g, repr.tokens, false, &mut rng);
            assert_eq!(g.shape(h), &[6, 4, 8], "{label}: feature shape");
            let y = stages.project.forward(&mut g, h, &repr);
            assert_eq!(g.shape(y), &[3, 8, 2], "{label}: forecast shape");
            assert!(!g.value(y).has_non_finite(), "{label}: non-finite output");
        }
    }

    #[test]
    fn meanstd_repr_centers_tokens() {
        let c = cfg(StageSpec {
            representation: ReprKind::MeanStd,
            ..StageSpec::default()
        });
        let store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(2);
        let repr = MeanStdRepr::new(&c);
        let mut g = Graph::new(&store);
        let x = Tensor::randn(&[2, 24, 2], &mut rng)
            .mul_scalar(5.0)
            .add_scalar(7.0);
        let xv = g.constant(x);
        let out = repr.forward(&mut g, xv);
        // tokens of a mean/std-normalized window have near-zero global mean
        let vals = g.value(out.tokens).clone();
        let mean: f32 = vals.to_vec().iter().sum::<f32>() / vals.numel() as f32;
        assert!(mean.abs() < 0.2, "tokens not centered: {mean}");
    }

    #[test]
    fn scale_equivariance_of_meanstd_composition() {
        // mean/std normalization makes the forecast equivariant to affine
        // input transforms: predict(a·x + k) == a·predict(x) + k.
        let c = cfg(StageSpec {
            representation: ReprKind::MeanStd,
            ..StageSpec::default()
        });
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(3);
        let stages = build_stages(&mut store, "base", &c, &mut rng);
        let x = Tensor::randn(&[1, 24, 2], &mut rng);
        let run = |input: Tensor| {
            let mut r = StdRng::seed_from_u64(0);
            let mut g = Graph::new(&store);
            let xv = g.constant(input);
            let repr = stages.repr.forward(&mut g, xv);
            let h = stages.extract.forward(&mut g, repr.tokens, false, &mut r);
            let y = stages.project.forward(&mut g, h, &repr);
            g.value(y).clone()
        };
        let y0 = run(x.clone());
        let y1 = run(x.mul_scalar(3.0).add_scalar(100.0));
        let d = y1.sub(&y0.mul_scalar(3.0).add_scalar(100.0)).abs().max_value();
        assert!(d < 1e-2, "affine equivariance violated: {d}");
    }

    #[test]
    fn tst_extraction_has_ln_and_ffn_params() {
        let default_cfg = cfg(StageSpec::default());
        let tst_cfg = cfg(StageSpec {
            extraction: ExtractKind::PatchTst,
            ..StageSpec::default()
        });
        let count = |c: &LiPFormerConfig| {
            let mut store = ParamStore::new();
            let mut rng = StdRng::seed_from_u64(4);
            let _ = build_stages(&mut store, "base", c, &mut rng);
            store.num_scalars()
        };
        assert!(
            count(&tst_cfg) > count(&default_cfg),
            "PatchTST-style extraction should out-weigh the paper's backbone"
        );
    }

    #[test]
    fn encoder_block_preserves_shape() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut store = ParamStore::new();
        let layer = EncoderBlock::new(&mut store, "e", 8, 2, 0.0, &mut rng);
        let mut g = Graph::new(&store);
        let x = g.constant(Tensor::randn(&[2, 5, 8], &mut rng));
        let y = layer.forward(&mut g, x, false, &mut rng);
        assert_eq!(g.shape(y), &[2, 5, 8]);
        assert!(!g.value(y).has_non_finite());
    }
}
