//! The full **LiPFormer** model: a stage composition (representation →
//! extraction → projection) plus optional weak-data enriching (Eq. 8:
//! `Ŷ = Ŷ_base + MLP(F_PreTrain)`).
//!
//! [`ComposedForecaster`] is the general form; [`LiPFormer`] is the same
//! type, whose default `stages` config is the paper's canonical composition
//! (byte-identical to the pre-decomposition monolith — golden-hash pinned).

use lip_autograd::{Graph, ParamStore, Var};
use lip_data::window::Batch;
use lip_data::CovariateSpec;
use lip_tensor::Tensor;
use lip_rng::rngs::StdRng;
use lip_rng::SeedableRng;

use crate::config::LiPFormerConfig;
use crate::contrastive::WeakEnriching;
use crate::forecaster::{Forecaster, WeaklySupervised};
use crate::stages::{build_stages, Extraction, Projection, Representation};

/// A forecaster assembled from swappable pipeline stages (paper Fig. 1 is
/// the canonical composition). Which stages are built is decided by
/// `config.stages`, so models reconstructed from a checkpointed config —
/// in `lip-serve`, `lip-exec`, the eval registry — pick up the right
/// composition automatically.
pub struct ComposedForecaster {
    store: ParamStore,
    config: LiPFormerConfig,
    repr: Box<dyn Representation>,
    extract: Box<dyn Extraction>,
    project: Box<dyn Projection>,
    enrich: Option<WeakEnriching>,
    name: String,
}

/// LiPFormer (paper Fig. 1) — the canonical stage composition.
pub type LiPFormer = ComposedForecaster;

impl ComposedForecaster {
    /// Full model with weak-data enriching: explicit covariates when `spec`
    /// has them, implicit temporal features otherwise.
    pub fn new(config: LiPFormerConfig, spec: &CovariateSpec, seed: u64) -> Self {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let stages = build_stages(&mut store, "base", &config, &mut rng);
        let enrich = WeakEnriching::new(
            &mut store,
            "enrich",
            spec,
            config.pred_len,
            config.channels,
            config.encoder_hidden,
            config.categorical_embed,
            &mut rng,
        );
        ComposedForecaster {
            store,
            repr: stages.repr,
            extract: stages.extract,
            project: stages.project,
            enrich: Some(enrich),
            name: "LiPFormer".into(),
            config,
        }
    }

    /// Stage composition only — the "without pre-train" ablation of Table VI
    /// and the "w/o enc" ablation of Figure 6.
    pub fn without_enriching(config: LiPFormerConfig, seed: u64) -> Self {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let stages = build_stages(&mut store, "base", &config, &mut rng);
        ComposedForecaster {
            store,
            repr: stages.repr,
            extract: stages.extract,
            project: stages.project,
            enrich: None,
            name: "LiPFormer-base".into(),
            config,
        }
    }

    /// Rename (used by ablation harnesses to label variants).
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Whether weak-data enriching is attached.
    pub fn has_enriching(&self) -> bool {
        self.enrich.is_some()
    }

    /// The backbone configuration.
    pub fn config(&self) -> &LiPFormerConfig {
        &self.config
    }

    /// The `[b, b]` contrastive logits for `batch` (Figure 7).
    pub fn logits_matrix(&self, batch: &Batch) -> Tensor {
        let enrich = self
            .enrich
            .as_ref()
            .expect("logits require the enriching module");
        let mut g = Graph::new(&self.store);
        let logits = enrich.logits(&mut g, batch);
        g.value(logits).clone()
    }
}

impl Forecaster for ComposedForecaster {
    fn name(&self) -> &str {
        &self.name
    }

    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn forward(&self, g: &mut Graph, batch: &Batch, training: bool, rng: &mut StdRng) -> Var {
        let x = g.constant(batch.x.clone());
        let repr = self.repr.forward(g, x);
        let h = self.extract.forward(g, repr.tokens, training, rng);
        let y_base = self.project.forward(g, h, &repr);
        match &self.enrich {
            Some(enrich) => enrich.guide(g, y_base, batch),
            None => y_base,
        }
    }
}

impl WeaklySupervised for ComposedForecaster {
    fn contrastive_loss(&self, g: &mut Graph, batch: &Batch) -> Var {
        self.enrich
            .as_ref()
            .expect("contrastive pre-training requires the enriching module")
            .contrastive_loss(g, batch)
    }

    fn freeze_encoders(&mut self) {
        if let Some(enrich) = &self.enrich {
            enrich.freeze_encoders(&mut self.store);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ExtractKind, ProjKind, ReprKind, StageSpec};
    use crate::stages::registered_compositions;

    fn spec_implicit() -> CovariateSpec {
        CovariateSpec {
            numerical: 0,
            cardinalities: vec![],
            time_features: 4,
        }
    }

    fn small_cfg() -> LiPFormerConfig {
        let mut c = LiPFormerConfig::small(24, 8, 2);
        c.patch_len = 6;
        c.hidden = 8;
        c.heads = 2;
        c.encoder_hidden = 8;
        c.dropout = 0.1;
        c
    }

    fn toy_batch(b: usize, rng: &mut StdRng) -> Batch {
        Batch {
            x: Tensor::randn(&[b, 24, 2], rng),
            y: Tensor::randn(&[b, 8, 2], rng),
            time_feats: Tensor::randn(&[b, 8, 4], rng).mul_scalar(0.2),
            cov_numerical: None,
            cov_categorical: None,
        }
    }

    #[test]
    fn forward_shape_with_enriching() {
        let mut rng = StdRng::seed_from_u64(1);
        let model = LiPFormer::new(small_cfg(), &spec_implicit(), 1);
        assert!(model.has_enriching());
        let b = toy_batch(3, &mut rng);
        let mut g = Graph::new(model.store());
        let y = model.forward(&mut g, &b, false, &mut rng);
        assert_eq!(g.shape(y), &[3, 8, 2]);
    }

    #[test]
    fn base_only_variant() {
        let mut rng = StdRng::seed_from_u64(2);
        let model = LiPFormer::without_enriching(small_cfg(), 2);
        assert!(!model.has_enriching());
        let b = toy_batch(2, &mut rng);
        let mut g = Graph::new(model.store());
        let y = model.forward(&mut g, &b, false, &mut rng);
        assert_eq!(g.shape(y), &[2, 8, 2]);
    }

    #[test]
    fn enriching_adds_parameters() {
        let with = LiPFormer::new(small_cfg(), &spec_implicit(), 3);
        let without = LiPFormer::without_enriching(small_cfg(), 3);
        assert!(with.num_parameters() > without.num_parameters());
    }

    #[test]
    fn freezing_shrinks_trainable_count() {
        let mut model = LiPFormer::new(small_cfg(), &spec_implicit(), 4);
        let before = model.num_parameters();
        model.freeze_encoders();
        assert!(model.num_parameters() < before);
    }

    #[test]
    fn dropout_only_in_training_mode() {
        let model = LiPFormer::new(small_cfg(), &spec_implicit(), 5);
        let mut rng = StdRng::seed_from_u64(6);
        let b = toy_batch(2, &mut rng);
        let eval = |seed: u64| {
            let mut r = StdRng::seed_from_u64(seed);
            let mut g = Graph::new(model.store());
            let y = model.forward(&mut g, &b, false, &mut r);
            g.value(y).clone()
        };
        // eval mode ignores the RNG entirely
        assert_eq!(eval(1), eval(999));
        // training mode with different seeds differs (dropout active)
        let train = |seed: u64| {
            let mut r = StdRng::seed_from_u64(seed);
            let mut g = Graph::new(model.store());
            let y = model.forward(&mut g, &b, true, &mut r);
            g.value(y).clone()
        };
        assert_ne!(train(1), train(2));
    }

    #[test]
    fn logits_matrix_shape() {
        let model = LiPFormer::new(small_cfg(), &spec_implicit(), 7);
        let mut rng = StdRng::seed_from_u64(8);
        let b = toy_batch(5, &mut rng);
        let logits = model.logits_matrix(&b);
        assert_eq!(logits.shape(), &[5, 5]);
    }

    #[test]
    fn every_registered_composition_forwards_with_enriching() {
        let mut rng = StdRng::seed_from_u64(9);
        let b = toy_batch(3, &mut rng);
        for (label, stages) in registered_compositions() {
            let model = LiPFormer::new(small_cfg().with_stages(stages), &spec_implicit(), 10);
            let mut g = Graph::new(model.store());
            let y = model.forward(&mut g, &b, false, &mut rng);
            assert_eq!(g.shape(y), &[3, 8, 2], "{label}");
            assert!(!g.value(y).has_non_finite(), "{label}: non-finite forecast");
        }
    }

    #[test]
    fn canonical_composition_matches_base_predictor_bytes() {
        // The composed model and the concrete BasePredictor assembly must
        // record the same tape bit-for-bit.
        let cfg = small_cfg();
        let model = LiPFormer::without_enriching(cfg.clone(), 11);
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(11);
        let bp = crate::base_predictor::BasePredictor::new(&mut store, "base", &cfg, &mut rng);
        let mut rng_b = StdRng::seed_from_u64(12);
        let b = toy_batch(2, &mut rng_b);
        let mut rng1 = StdRng::seed_from_u64(0);
        let mut g1 = Graph::new(model.store());
        let y1 = model.forward(&mut g1, &b, false, &mut rng1);
        let mut rng2 = StdRng::seed_from_u64(0);
        let mut g2 = Graph::new(&store);
        let xv = g2.constant(b.x.clone());
        let y2 = bp.forward(&mut g2, xv, false, &mut rng2);
        let v1 = g1.value(y1).to_vec();
        let v2 = g2.value(y2).to_vec();
        assert_eq!(
            v1.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
            v2.iter().map(|f| f.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn alternative_composition_changes_params_not_interface() {
        let tst = StageSpec {
            representation: ReprKind::MeanStd,
            extraction: ExtractKind::PatchTst,
            projection: ProjKind::FlattenLinear,
            depth: 2,
        };
        let default = LiPFormer::without_enriching(small_cfg(), 13);
        let swapped = LiPFormer::without_enriching(small_cfg().with_stages(tst), 13);
        assert_ne!(default.num_parameters(), swapped.num_parameters());
        assert_eq!(default.config().seq_len, swapped.config().seq_len);
    }
}
