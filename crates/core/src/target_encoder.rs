//! The **Target Encoder** (paper §III-C2, Eq. 7): encodes ground-truth
//! future windows (target sequences) to `[b, L]` representation vectors for
//! the contrastive pre-training. Identical trunk to the Covariate Encoder but
//! without embedding/concatenation — the input is lifted directly from the
//! `c` target channels.

use lip_autograd::{Graph, ParamStore, Var};
use lip_nn::Linear;
use lip_rng::Rng;

use crate::covariate_encoder::EncoderTrunk;

/// Dual-encoder half that embeds target sequences.
#[derive(Debug, Clone)]
pub struct TargetEncoder {
    lift: Linear,
    trunk: EncoderTrunk,
    channels: usize,
    horizon: usize,
}

impl TargetEncoder {
    /// Build for `channels` target channels, horizon `L`, hidden width `hd`.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        channels: usize,
        horizon: usize,
        hidden: usize,
        rng: &mut impl Rng,
    ) -> Self {
        TargetEncoder {
            lift: Linear::new(store, &format!("{name}.lift"), channels, hidden, true, rng),
            trunk: EncoderTrunk::new(store, &format!("{name}.trunk"), horizon, hidden, rng),
            channels,
            horizon,
        }
    }

    /// `y: [b, L, c] → [b, L]` (Eq. 7 then Eq. 5–6).
    pub fn forward(&self, g: &mut Graph, y: Var) -> Var {
        let shape = g.shape(y).to_vec();
        assert_eq!(shape.len(), 3, "target encoder expects [b, L, c]");
        assert_eq!(shape[1], self.horizon, "horizon mismatch");
        assert_eq!(shape[2], self.channels, "channel mismatch");
        let lifted = self.lift.forward(g, y);
        self.trunk.forward(g, lifted)
    }

    /// Horizon of the representation vector.
    pub fn horizon(&self) -> usize {
        self.horizon
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lip_autograd::gradcheck::check_gradients;
    use lip_tensor::Tensor;
    use lip_rng::rngs::StdRng;
    use lip_rng::SeedableRng;

    #[test]
    fn output_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let enc = TargetEncoder::new(&mut store, "tgt", 3, 8, 8, &mut rng);
        let mut g = Graph::new(&store);
        let y = g.constant(Tensor::randn(&[4, 8, 3], &mut rng));
        let v = enc.forward(&mut g, y);
        assert_eq!(g.shape(v), &[4, 8]);
    }

    #[test]
    fn different_targets_get_different_embeddings() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let enc = TargetEncoder::new(&mut store, "tgt", 1, 6, 8, &mut rng);
        let run = |y: Tensor| {
            let mut g = Graph::new(&store);
            let yv = g.constant(y);
            let v = enc.forward(&mut g, yv);
            g.value(v).clone()
        };
        let a = run(Tensor::randn(&[1, 6, 1], &mut rng));
        let b = run(Tensor::randn(&[1, 6, 1], &mut rng));
        assert!(a.sub(&b).abs().max_value() > 1e-6);
    }

    #[test]
    fn gradients_check() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let enc = TargetEncoder::new(&mut store, "tgt", 2, 3, 4, &mut rng);
        let y = Tensor::randn(&[2, 3, 2], &mut rng).mul_scalar(0.5);
        check_gradients(
            &mut store,
            &move |g| {
                let yv = g.constant(y.clone());
                let v = enc.forward(g, yv);
                let sq = g.square(v);
                g.mean(sq)
            },
            1e-2,
            3e-2,
        )
        .unwrap();
    }
}
