//! Model-validation entry points used by the `lip-analyze` static analyzer
//! and any pre-flight check: record complete, *sanitized* forward/loss tapes
//! and derive the batch shape contract a configuration implies.
//!
//! The tapes returned here have the numerical sanitizer enabled, so a NaN or
//! Inf produced anywhere in the pass is pinned to its producing op with
//! provenance (see [`lip_autograd::SanitizerReport`]).

use lip_autograd::{Graph, Var};
use lip_data::window::{Batch, BatchContract};
use lip_data::CovariateSpec;
use lip_rng::rngs::StdRng;
use lip_rng::SeedableRng;

use crate::{Forecaster, LiPFormerConfig, WeaklySupervised};

/// Record the full forward + Smooth-L1 loss graph for `batch` on a
/// sanitizing tape — the exact graph [`crate::Trainer::fit`] differentiates.
/// Returns the tape plus the prediction and loss nodes.
pub fn record_forward_loss<'m, M: Forecaster + ?Sized>(
    model: &'m M,
    batch: &Batch,
    beta: f32,
    training: bool,
    seed: u64,
) -> (Graph<'m>, Var, Var) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::with_sanitizer(model.store());
    let pred = model.forward(&mut g, batch, training, &mut rng);
    let target = g.constant(batch.y.clone());
    let loss = g.smooth_l1_loss(pred, target, beta);
    (g, pred, loss)
}

/// Record the symmetric contrastive pre-training graph on a sanitizing tape.
pub fn record_contrastive<'m, M: WeaklySupervised + ?Sized>(
    model: &'m M,
    batch: &Batch,
) -> (Graph<'m>, Var) {
    let mut g = Graph::with_sanitizer(model.store());
    let loss = model.contrastive_loss(&mut g, batch);
    (g, loss)
}

/// The batch shape contract implied by a model configuration plus its
/// covariate spec — what every batch fed to the model must look like.
pub fn batch_contract(config: &LiPFormerConfig, spec: &CovariateSpec) -> BatchContract {
    spec.batch_contract(config.seq_len, config.pred_len, config.channels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LiPFormer;
    use lip_data::pipeline::prepare;
    use lip_data::{generate, DatasetName, GeneratorConfig};

    #[test]
    fn recorded_graphs_are_sane() {
        let ds = generate(DatasetName::ETTh1, GeneratorConfig::test(3));
        let prep = prepare(&ds, 48, 24);
        let config = LiPFormerConfig::small(48, 24, prep.channels);
        let model = LiPFormer::new(config.clone(), &prep.spec, 3);
        let batch = prep.train.batch(&[0, 1]);

        batch_contract(&config, &prep.spec).check(&batch).unwrap();

        let (g, pred, loss) = record_forward_loss(&model, &batch, 1.0, false, 0);
        assert_eq!(g.shape(pred), &[2, 24, prep.channels]);
        assert!(g.shape(loss).is_empty(), "loss must be scalar");
        assert!(g.sanitizer_reports().is_empty(), "clean pass must be finite");

        let (gc, closs) = record_contrastive(&model, &batch);
        assert!(gc.shape(closs).is_empty());
        assert!(gc.sanitizer_reports().is_empty());
    }
}
