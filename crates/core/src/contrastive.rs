//! The weak-data-enriching assembly (paper §III-B, Fig. 1 top): dual
//! encoders + trainable log-temperature + the Vector Mapping that injects the
//! frozen covariate representation into the final prediction (Eq. 8), and
//! the CLIP-style symmetric contrastive pre-training objective.

use lip_autograd::{Graph, ParamId, ParamStore, Var};
use lip_data::window::Batch;
use lip_data::CovariateSpec;
use lip_nn::loss::{clip_logits, clip_symmetric_ce};
use lip_nn::Linear;
use lip_tensor::Tensor;
use lip_rng::Rng;

use crate::covariate_encoder::{CovariateEncoder, CovariateInput};
use crate::target_encoder::TargetEncoder;

/// Dual-encoder weak supervision attached to a base forecaster.
#[derive(Debug, Clone)]
pub struct WeakEnriching {
    covariate: CovariateEncoder,
    target: TargetEncoder,
    log_temp: ParamId,
    /// Vector Mapping (Eq. 8): `[b, L] → [b, L·c]`, learned *with* the Base
    /// Predictor (it stays trainable after the encoders freeze). Mapping the
    /// whole representation vector — rather than per step — lets training
    /// recover the step correspondence the contrastive objective only
    /// constrains at the whole-vector level.
    mapping: Linear,
    horizon: usize,
    channels: usize,
    /// Parameter index range of (covariate encoder, target encoder,
    /// log-temperature) — frozen after pre-training.
    encoder_params: (usize, usize),
    /// True when batches carry explicit covariates; false = implicit
    /// temporal features.
    explicit: bool,
}

impl WeakEnriching {
    /// Register the enriching parameters for a `(L, c)` task described by
    /// `spec`. Uses explicit covariates when the spec has them, otherwise
    /// implicit temporal features.
    // The signature mirrors the paper's hyperparameter list one-for-one; a
    // params struct would just rename the same eight knobs.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        spec: &CovariateSpec,
        horizon: usize,
        channels: usize,
        hidden: usize,
        categorical_embed: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let explicit = spec.has_explicit();
        let start = store.len();
        let covariate = if explicit {
            CovariateEncoder::new(
                store,
                &format!("{name}.covariate"),
                spec.numerical,
                &spec.cardinalities,
                categorical_embed,
                horizon,
                hidden,
                rng,
            )
        } else {
            CovariateEncoder::new(
                store,
                &format!("{name}.covariate"),
                spec.time_features,
                &[],
                categorical_embed,
                horizon,
                hidden,
                rng,
            )
        };
        let target = TargetEncoder::new(store, &format!("{name}.target"), channels, horizon, hidden, rng);
        // CLIP initializes the logit scale to ln(1/0.07) ≈ 2.66; we start
        // lower since batches here are small.
        let log_temp = store.add(format!("{name}.log_temp"), Tensor::scalar(1.0));
        let end = store.len();
        let mapping = Linear::new(
            store,
            &format!("{name}.mapping"),
            horizon,
            horizon * channels,
            true,
            rng,
        );
        // Near-zero init: the guided prediction starts as Ŷ_base and the
        // optimizer grows the covariate correction only where it helps —
        // otherwise a random frozen-encoder projection would swamp the
        // backbone early in the (short) prediction training.
        for id in mapping.param_ids() {
            let damped = store.value(id).mul_scalar(0.01);
            store.set_value(id, damped);
        }
        WeakEnriching {
            covariate,
            target,
            log_temp,
            mapping,
            horizon,
            channels,
            encoder_params: (start, end),
            explicit,
        }
    }

    /// Whether this enriching consumes explicit covariates.
    pub fn is_explicit(&self) -> bool {
        self.explicit
    }

    fn covariate_input<'a>(&self, batch: &'a Batch) -> CovariateInput<'a> {
        if self.explicit {
            CovariateInput {
                numerical: batch
                    .cov_numerical
                    .as_ref()
                    .expect("explicit enriching needs numerical covariates in the batch"),
                categorical: batch
                    .cov_categorical
                    .as_deref()
                    .unwrap_or(&[]),
            }
        } else {
            CovariateInput {
                numerical: &batch.time_feats,
                categorical: &[],
            }
        }
    }

    /// The pre-training objective `½(CE_rows + CE_cols)` over the batch's
    /// covariate/target pairs (paper §III-B).
    pub fn contrastive_loss(&self, g: &mut Graph, batch: &Batch) -> Var {
        let v_c = self.covariate.forward(g, &self.covariate_input(batch));
        let y = g.constant(batch.y.clone());
        let v_t = self.target.forward(g, y);
        let temp = g.param(self.log_temp);
        clip_symmetric_ce(g, v_t, v_c, temp)
    }

    /// The `[b, b]` logits matrix (for the Figure 7 visualization).
    pub fn logits(&self, g: &mut Graph, batch: &Batch) -> Var {
        let v_c = self.covariate.forward(g, &self.covariate_input(batch));
        let y = g.constant(batch.y.clone());
        let v_t = self.target.forward(g, y);
        let temp = g.param(self.log_temp);
        clip_logits(g, v_t, v_c, temp)
    }

    /// Eq. 8's correction term: map the covariate representation through the
    /// Vector Mapping to `[b, L, c]` and add it to `y_base`.
    pub fn guide(&self, g: &mut Graph, y_base: Var, batch: &Batch) -> Var {
        let v_c = self.covariate.forward(g, &self.covariate_input(batch)); // [b, L]
        let b = g.shape(v_c)[0];
        let flat = self.mapping.forward(g, v_c); // [b, L·c]
        let correction = g.reshape(flat, &[b, self.horizon, self.channels]);
        g.add(y_base, correction)
    }

    /// Freeze the dual encoders and temperature (paper: "we freeze the
    /// parameters of the Covariate Encoder" during prediction training).
    /// The Vector Mapping stays trainable.
    pub fn freeze_encoders(&self, store: &mut ParamStore) {
        let (start, end) = self.encoder_params;
        for i in start..end {
            store.freeze(store.id_at(i));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lip_rng::rngs::StdRng;
    use lip_rng::SeedableRng;

    fn implicit_spec() -> CovariateSpec {
        CovariateSpec {
            numerical: 0,
            cardinalities: vec![],
            time_features: 4,
        }
    }

    fn explicit_spec() -> CovariateSpec {
        CovariateSpec {
            numerical: 3,
            cardinalities: vec![2],
            time_features: 4,
        }
    }

    fn batch(b: usize, l: usize, c: usize, explicit: bool, rng: &mut StdRng) -> Batch {
        Batch {
            x: Tensor::randn(&[b, 8, c], rng),
            y: Tensor::randn(&[b, l, c], rng),
            time_feats: Tensor::randn(&[b, l, 4], rng).mul_scalar(0.2),
            cov_numerical: explicit.then(|| Tensor::randn(&[b, l, 3], rng)),
            cov_categorical: explicit.then(|| vec![(0..b * l).map(|i| i % 2).collect()]),
        }
    }

    #[test]
    fn implicit_contrastive_loss_is_finite() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let we = WeakEnriching::new(&mut store, "we", &implicit_spec(), 6, 2, 8, 1, &mut rng);
        assert!(!we.is_explicit());
        let b = batch(4, 6, 2, false, &mut rng);
        let mut g = Graph::new(&store);
        let loss = we.contrastive_loss(&mut g, &b);
        assert!(g.value(loss).item().is_finite());
        // random embeddings ≈ uniform: loss near ln(b)
        assert!((g.value(loss).item() - (4.0f32).ln()).abs() < 1.0);
    }

    #[test]
    fn explicit_guide_shapes() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let we = WeakEnriching::new(&mut store, "we", &explicit_spec(), 6, 2, 8, 1, &mut rng);
        assert!(we.is_explicit());
        let b = batch(3, 6, 2, true, &mut rng);
        let mut g = Graph::new(&store);
        let y_base = g.constant(Tensor::zeros(&[3, 6, 2]));
        let out = we.guide(&mut g, y_base, &b);
        assert_eq!(g.shape(out), &[3, 6, 2]);
    }

    #[test]
    fn logits_matrix_is_square() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let we = WeakEnriching::new(&mut store, "we", &implicit_spec(), 5, 1, 8, 1, &mut rng);
        let b = batch(6, 5, 1, false, &mut rng);
        let mut g = Graph::new(&store);
        let logits = we.logits(&mut g, &b);
        assert_eq!(g.shape(logits), &[6, 6]);
    }

    #[test]
    fn freezing_keeps_mapping_trainable() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut store = ParamStore::new();
        let we = WeakEnriching::new(&mut store, "we", &implicit_spec(), 4, 2, 8, 1, &mut rng);
        let before = store.num_scalars();
        we.freeze_encoders(&mut store);
        let after = store.num_scalars();
        assert!(after < before, "freezing must reduce trainable scalars");
        // the Vector Mapping (L=4 → L·c=8 linear: 32 weights + 8 biases)
        // stays trainable
        assert_eq!(after, 4 * 8 + 8);
    }

    #[test]
    fn pretraining_reduces_contrastive_loss() {
        // a few AdamW steps on a fixed batch must drive the loss down
        use lip_nn::{AdamW, Optimizer};
        let mut rng = StdRng::seed_from_u64(5);
        let mut store = ParamStore::new();
        let we = WeakEnriching::new(&mut store, "we", &explicit_spec(), 4, 1, 8, 1, &mut rng);
        let b = batch(6, 4, 1, true, &mut rng);
        let mut opt = AdamW::new(5e-3, 0.0);
        let loss_at = |store: &ParamStore| {
            let mut g = Graph::new(store);
            let l = we.contrastive_loss(&mut g, &b);
            g.value(l).item()
        };
        let initial = loss_at(&store);
        for _ in 0..30 {
            let grads = {
                let mut g = Graph::new(&store);
                let l = we.contrastive_loss(&mut g, &b);
                g.backward(l)
            };
            grads.apply_to(&mut store);
            opt.step(&mut store);
        }
        let fin = loss_at(&store);
        assert!(
            fin < initial * 0.8,
            "contrastive loss failed to drop: {initial} → {fin}"
        );
    }
}
