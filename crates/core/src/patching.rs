//! Channel independence + patching (paper §III-C1): each univariate channel
//! is processed independently under shared weights, and its window is split
//! into `n = T / pl` non-overlapping patches of length `pl`, reducing the
//! attention cost from `O(T²)` to `O(T²/pl²)`.
//!
//! Two constructors are provided: [`Patching::apply`] for the paper's
//! non-overlapping division, and [`Patching::apply_strided`] for the
//! PatchTST-style overlapping case `stride ≤ pl`, built on the zero-copy
//! sliding-window view (`unfold`) so overlapping patches share storage
//! instead of duplicating up to `pl / stride ×` the input.

use lip_autograd::{Graph, Var};

/// Patch division for channel-independent patch-wise models.
#[derive(Debug, Clone, Copy)]
pub struct Patching {
    /// Patch length `pl`.
    pub patch_len: usize,
}

impl Patching {
    /// `x: [b, T, c] → [b·c, n, pl]` — flatten channels into the batch
    /// (channel independence) and cut each series into patches.
    pub fn apply(self, g: &mut Graph, x: Var) -> Var {
        let shape = g.shape(x).to_vec();
        assert_eq!(shape.len(), 3, "patching expects [b, T, c]");
        let (b, t, c) = (shape[0], shape[1], shape[2]);
        assert_eq!(
            t % self.patch_len,
            0,
            "seq_len {t} not divisible by patch_len {}",
            self.patch_len
        );
        let n = t / self.patch_len;
        let per_channel = g.permute(x, &[0, 2, 1]); // [b, c, T]
        g.reshape(per_channel, &[b * c, n, self.patch_len])
    }

    /// Overlapping patch division: `x: [b, T, c] → [b·c, n, pl]` with
    /// `n = (T - pl) / stride + 1`. The window extraction is a zero-copy
    /// `unfold` view — overlapping patches alias the same storage, so the
    /// pre-attention tensor costs O(T) memory instead of O(n·pl).
    /// `stride == patch_len` degenerates to the same patches as
    /// [`Patching::apply`].
    pub fn apply_strided(self, g: &mut Graph, x: Var, stride: usize) -> Var {
        let shape = g.shape(x).to_vec();
        assert_eq!(shape.len(), 3, "patching expects [b, T, c]");
        let (b, t, c) = (shape[0], shape[1], shape[2]);
        assert!(stride >= 1, "stride must be >= 1");
        assert!(
            self.patch_len <= t,
            "patch_len {} exceeds seq_len {t}",
            self.patch_len
        );
        let n = (t - self.patch_len) / stride + 1;
        let windows = g.unfold(x, 1, self.patch_len, stride); // [b, n, c, pl]
        let per_channel = g.permute(windows, &[0, 2, 1, 3]); // [b, c, n, pl]
        g.reshape(per_channel, &[b * c, n, self.patch_len])
    }

    /// Inverse bookkeeping for the prediction head:
    /// `y: [b·c, L] → [b, L, c]`.
    pub fn merge_channels(self, g: &mut Graph, y: Var, batch: usize, channels: usize) -> Var {
        let shape = g.shape(y).to_vec();
        assert_eq!(shape.len(), 2, "merge expects [b·c, L]");
        assert_eq!(shape[0], batch * channels, "batch/channel mismatch");
        let l = shape[1];
        let split = g.reshape(y, &[batch, channels, l]);
        g.permute(split, &[0, 2, 1])
    }

    /// Number of patches for a window of `seq_len`.
    pub fn num_patches(self, seq_len: usize) -> usize {
        assert_eq!(seq_len % self.patch_len, 0);
        seq_len / self.patch_len
    }

    /// Number of overlapping patches [`Patching::apply_strided`] produces.
    pub fn num_patches_strided(self, seq_len: usize, stride: usize) -> usize {
        assert!(stride >= 1 && self.patch_len <= seq_len);
        (seq_len - self.patch_len) / stride + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lip_autograd::ParamStore;
    use lip_tensor::Tensor;

    #[test]
    fn patch_layout_preserves_channel_series() {
        let store = ParamStore::new();
        let mut g = Graph::new(&store);
        // b=1, T=6, c=2: channel 0 = [0,2,4,6,8,10], channel 1 = [1,3,5,7,9,11]
        let x = g.constant(Tensor::arange(12).reshape(&[1, 6, 2]));
        let p = Patching { patch_len: 3 };
        let out = p.apply(&mut g, x);
        assert_eq!(g.shape(out), &[2, 2, 3]);
        let v = g.value(out);
        // row 0 of channel 0: first patch of the even series
        assert_eq!(v.slice_axis(0, 0, 1).to_vec(), vec![0., 2., 4., 6., 8., 10.]);
        assert_eq!(v.slice_axis(0, 1, 2).to_vec(), vec![1., 3., 5., 7., 9., 11.]);
    }

    #[test]
    fn merge_channels_inverts_layout() {
        let store = ParamStore::new();
        let mut g = Graph::new(&store);
        // [b·c=4, L=2] with b=2, c=2
        let y = g.constant(Tensor::arange(8).reshape(&[4, 2]));
        let p = Patching { patch_len: 1 };
        let merged = p.merge_channels(&mut g, y, 2, 2);
        assert_eq!(g.shape(merged), &[2, 2, 2]);
        let v = g.value(merged);
        // batch 0, step 0: channel 0 = row0[0] = 0, channel 1 = row1[0] = 2
        assert_eq!(v.at(&[0, 0, 0]), 0.0);
        assert_eq!(v.at(&[0, 0, 1]), 2.0);
        assert_eq!(v.at(&[1, 1, 0]), 5.0);
        assert_eq!(v.at(&[1, 1, 1]), 7.0);
    }

    #[test]
    fn patch_then_merge_roundtrip_univariate() {
        // With c = 1, patching to [b, n·pl] then merging must reproduce the
        // original series order.
        let store = ParamStore::new();
        let mut g = Graph::new(&store);
        let x = g.constant(Tensor::arange(8).reshape(&[2, 4, 1]));
        let p = Patching { patch_len: 2 };
        let patched = p.apply(&mut g, x); // [2, 2, 2]
        let flat = g.reshape(patched, &[2, 4]);
        let back = p.merge_channels(&mut g, flat, 2, 1);
        assert_eq!(g.value(back), g.value(x));
    }

    #[test]
    fn strided_patching_overlaps_and_degenerates() {
        let store = ParamStore::new();
        let mut g = Graph::new(&store);
        // b=1, T=6, c=1: series [0..6)
        let x = g.constant(Tensor::arange(6).reshape(&[1, 6, 1]));
        let p = Patching { patch_len: 4 };
        let out = p.apply_strided(&mut g, x, 1); // n = 3 overlapping windows
        assert_eq!(g.shape(out), &[1, 3, 4]);
        assert_eq!(p.num_patches_strided(6, 1), 3);
        let v = g.value(out);
        assert_eq!(v.slice_axis(1, 0, 1).to_vec(), vec![0., 1., 2., 3.]);
        assert_eq!(v.slice_axis(1, 1, 2).to_vec(), vec![1., 2., 3., 4.]);
        assert_eq!(v.slice_axis(1, 2, 3).to_vec(), vec![2., 3., 4., 5.]);

        // stride == patch_len reproduces the non-overlapping division
        let mut g2 = Graph::new(&store);
        let x2 = g2.constant(Tensor::arange(12).reshape(&[1, 6, 2]));
        let p2 = Patching { patch_len: 3 };
        let a = p2.apply(&mut g2, x2);
        let b = p2.apply_strided(&mut g2, x2, 3);
        assert_eq!(g2.value(a), g2.value(b));
    }

    #[test]
    fn strided_patching_gradient_matches_finite_difference() {
        // Overlapping windows scatter-add their adjoints back; check the
        // whole strided path (unfold -> permute -> reshape) numerically.
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::arange(8).mul_scalar(0.1).reshape(&[1, 8, 1]));
        let ok = lip_autograd::gradcheck::check_gradients(
            &mut store,
            &|g: &mut Graph| {
                let wv = g.param(w);
                let patched = Patching { patch_len: 4 }.apply_strided(g, wv, 2);
                let sq = g.square(patched);
                g.mean(sq)
            },
            1e-2,
            1e-2,
        );
        assert!(ok.is_ok(), "{ok:?}");
    }

    #[test]
    fn token_count_matches_complexity_claim() {
        let p = Patching { patch_len: 48 };
        assert_eq!(p.num_patches(720), 15);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn indivisible_window_rejected() {
        let store = ParamStore::new();
        let mut g = Graph::new(&store);
        let x = g.constant(Tensor::zeros(&[1, 7, 1]));
        let _ = Patching { patch_len: 3 }.apply(&mut g, x);
    }
}
