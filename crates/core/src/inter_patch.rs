//! **Inter-Patch attention** (paper §III-C1, Fig. 3 and Eq. 2): softmax
//! self-attention across the `n` patch tokens of the `hd`-wide
//! representation, applied *without any Positional Encoding* — patch order
//! information is already carried by the Cross-Patch trend mixing.

use lip_autograd::{Graph, ParamStore, Var};
use lip_nn::{Linear, MultiHeadSelfAttention};
use lip_rng::Rng;

use crate::cross_patch::compatible_heads;

#[derive(Debug, Clone)]
enum PatchCore {
    Attention(MultiHeadSelfAttention),
    LinearOnly(Linear),
}

/// Inter-patch attention block (residual) on `[b·c, n, hd]`.
#[derive(Debug, Clone)]
pub struct InterPatch {
    core: PatchCore,
    hidden: usize,
}

impl InterPatch {
    /// `use_attention = false` selects the Table XI ablation (linear layer
    /// in place of the attention).
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        hidden: usize,
        preferred_heads: usize,
        use_attention: bool,
        rng: &mut impl Rng,
    ) -> Self {
        let core = if use_attention {
            let heads = compatible_heads(hidden, preferred_heads);
            PatchCore::Attention(MultiHeadSelfAttention::new(
                store,
                &format!("{name}.patch_attn"),
                hidden,
                heads,
                rng,
            ))
        } else {
            PatchCore::LinearOnly(Linear::new(
                store,
                &format!("{name}.patch_linear"),
                hidden,
                hidden,
                true,
                rng,
            ))
        };
        InterPatch { core, hidden }
    }

    /// `h: [b·c, n, hd] → [b·c, n, hd]` with a residual connection.
    pub fn forward(&self, g: &mut Graph, h: Var) -> Var {
        let shape = g.shape(h).to_vec();
        assert_eq!(shape.len(), 3, "inter-patch expects [b·c, n, hd]");
        assert_eq!(shape[2], self.hidden, "hidden width mismatch");
        let mixed = match &self.core {
            PatchCore::Attention(attn) => attn.forward(g, h),
            PatchCore::LinearOnly(lin) => lin.forward(g, h),
        };
        g.add(mixed, h)
    }

    /// True when running the attention (non-ablated) variant.
    pub fn uses_attention(&self) -> bool {
        matches!(self.core, PatchCore::Attention(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lip_autograd::gradcheck::check_gradients;
    use lip_tensor::Tensor;
    use lip_rng::rngs::StdRng;
    use lip_rng::SeedableRng;

    #[test]
    fn preserves_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let ip = InterPatch::new(&mut store, "ip", 8, 4, true, &mut rng);
        let mut g = Graph::new(&store);
        let x = g.constant(Tensor::randn(&[2, 5, 8], &mut rng));
        let y = ip.forward(&mut g, x);
        assert_eq!(g.shape(y), &[2, 5, 8]);
    }

    #[test]
    fn residual_dominates_at_zero_weights() {
        // With random small weights the residual path keeps outputs close to
        // inputs — the block cannot destroy information at init.
        let mut rng = StdRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let ip = InterPatch::new(&mut store, "ip", 8, 2, true, &mut rng);
        let x = Tensor::randn(&[1, 4, 8], &mut rng);
        let mut g = Graph::new(&store);
        let xv = g.constant(x.clone());
        let y = ip.forward(&mut g, xv);
        let corr_num = g
            .value(y)
            .mul(&x)
            .sum()
            .item();
        assert!(corr_num > 0.0, "residual path should correlate with input");
    }

    #[test]
    fn patches_exchange_information() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let ip = InterPatch::new(&mut store, "ip", 4, 2, true, &mut rng);
        let base = Tensor::zeros(&[1, 3, 4]);
        let mut spiked = base.clone();
        spiked.data_mut()[0] = 3.0; // token 0 feature 0
        let run = |input: Tensor| {
            let mut g = Graph::new(&store);
            let x = g.constant(input);
            let y = ip.forward(&mut g, x);
            g.value(y).clone()
        };
        let d = run(spiked)
            .slice_axis(1, 2, 3)
            .sub(&run(base).slice_axis(1, 2, 3))
            .abs()
            .max_value();
        assert!(d > 1e-7, "inter-patch attention should mix tokens: {d}");
    }

    #[test]
    fn linear_ablation_does_not_mix_tokens() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut store = ParamStore::new();
        let ip = InterPatch::new(&mut store, "ip", 4, 2, false, &mut rng);
        assert!(!ip.uses_attention());
        let base = Tensor::zeros(&[1, 3, 4]);
        let mut spiked = base.clone();
        spiked.data_mut()[0] = 3.0;
        let run = |input: Tensor| {
            let mut g = Graph::new(&store);
            let x = g.constant(input);
            let y = ip.forward(&mut g, x);
            g.value(y).clone()
        };
        // the pointwise linear variant cannot propagate token 0 to token 2
        let d = run(spiked)
            .slice_axis(1, 2, 3)
            .sub(&run(base).slice_axis(1, 2, 3))
            .abs()
            .max_value();
        assert!(d < 1e-7, "linear ablation must stay token-local: {d}");
    }

    #[test]
    fn gradients_check() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut store = ParamStore::new();
        let ip = InterPatch::new(&mut store, "ip", 4, 2, true, &mut rng);
        let x = Tensor::randn(&[2, 3, 4], &mut rng).mul_scalar(0.5);
        check_gradients(
            &mut store,
            &move |g| {
                let xv = g.constant(x.clone());
                let y = ip.forward(g, xv);
                let sq = g.square(y);
                g.mean(sq)
            },
            1e-2,
            3e-2,
        )
        .unwrap();
    }
}
