//! # lipformer
//!
//! A from-scratch Rust reproduction of **LiPFormer** — *Towards Lightweight
//! Time Series Forecasting: a Patch-wise Transformer with Weak Data
//! Enriching* (ICDE 2025).
//!
//! The model has two halves:
//!
//! 1. **Base Predictor** (paper §III-C1) — a lightweight patch-wise
//!    Transformer that *eliminates* Positional Encoding, Layer Normalization
//!    and Feed-Forward Networks, replacing them with:
//!    * instance (last-value) normalization against distribution shift,
//!    * channel-independent patching,
//!    * **Cross-Patch attention** over lagged global trend sequences,
//!    * **Inter-Patch attention** over patch tokens,
//!    * two single-layer MLP heads.
//! 2. **Weak data enriching** (paper §III-B, §III-C2) — a CLIP-style dual
//!    encoder (Covariate Encoder + Target Encoder) pre-trained with a
//!    symmetric contrastive loss to align future weak labels (explicit
//!    weather/grid forecasts or implicit temporal features) with target
//!    sequences; at prediction time the frozen Covariate Encoder guides the
//!    Base Predictor through a learned Vector Mapping (Eq. 8).
//!
//! ## Quick start
//!
//! ```
//! use lip_data::{generate, DatasetName, GeneratorConfig};
//! use lip_data::pipeline::prepare;
//! use lipformer::{LiPFormer, LiPFormerConfig, TrainConfig, Trainer};
//!
//! let ds = generate(DatasetName::ETTh1, GeneratorConfig::test(7));
//! let prep = prepare(&ds, 96, 24);
//! let config = LiPFormerConfig::small(96, 24, prep.channels);
//! let mut model = LiPFormer::new(config, &prep.spec, 7);
//! let mut trainer = Trainer::new(TrainConfig { epochs: 1, pretrain_epochs: 1, ..TrainConfig::fast() });
//! trainer.pretrain(&mut model, &prep.train);
//! let report = trainer.fit(&mut model, &prep.train, &prep.val);
//! assert!(report.best_val_loss.is_finite());
//! ```

#![forbid(unsafe_code)]

pub mod analysis;
pub mod base_predictor;
pub mod checkpoint;
pub mod config;
pub mod contrastive;
pub mod covariate_encoder;
pub mod cross_patch;
pub mod forecaster;
pub mod inter_patch;
pub mod metrics;
pub mod model;
pub mod patching;
pub mod plugin;
pub mod revin;
pub mod stages;
pub mod target_encoder;
pub mod trainer;

pub use base_predictor::BasePredictor;
pub use config::{ExtractKind, LiPFormerConfig, ProjKind, ReprKind, StageSpec};
pub use contrastive::WeakEnriching;
pub use covariate_encoder::CovariateEncoder;
pub use forecaster::{Forecaster, WeaklySupervised};
pub use metrics::{mae, mse, ForecastMetrics};
pub use model::{ComposedForecaster, LiPFormer};
pub use stages::{registered_compositions, Extraction, Projection, Representation};
pub use plugin::WithCovariateEncoder;
pub use target_encoder::TargetEncoder;
pub use trainer::{TrainConfig, TrainReport, Trainer};
