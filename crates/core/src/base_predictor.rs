//! The **Base Predictor** backbone (paper §III-C1, Fig. 4): instance
//! normalization → channel-independent patching → Cross-Patch attention →
//! Inter-Patch attention → two single-layer MLP heads. No Positional
//! Encoding, no Layer Normalization, no Feed-Forward Networks — unless the
//! Table X ablation switches re-insert the latter two.
//!
//! Since the stage decomposition this is a thin concrete assembly of the
//! canonical stage triple ([`crate::stages::LastValueRepr`] →
//! [`crate::stages::LipAttentionExtraction`] →
//! [`crate::stages::PatchHeadProjection`]); registration order and the
//! recorded tape are byte-identical to the pre-decomposition monolith.

use lip_autograd::{Graph, ParamStore, Var};
use lip_rng::rngs::StdRng;
use lip_rng::Rng;

use crate::config::LiPFormerConfig;
use crate::stages::{
    Extraction, LastValueRepr, LipAttentionExtraction, PatchHeadProjection, Projection,
    Representation,
};

/// LiPFormer's autoregressive backbone producing `Ŷ_base`.
#[derive(Debug, Clone)]
pub struct BasePredictor {
    config: LiPFormerConfig,
    repr: LastValueRepr,
    extract: LipAttentionExtraction,
    project: PatchHeadProjection,
}

impl BasePredictor {
    /// Register all backbone parameters in `store`.
    pub fn new(store: &mut ParamStore, name: &str, config: &LiPFormerConfig, rng: &mut impl Rng) -> Self {
        config.validate();
        let repr = LastValueRepr::new(config);
        // Legacy registration order: cross → inter → head_tokens →
        // head_features → ln_cross → ln_inter → ffn. The projection head is
        // interleaved between the extraction's attention and LN/FFN halves
        // so parameter ids and RNG draws match the pre-refactor monolith.
        let parts = LipAttentionExtraction::begin(store, name, config, rng);
        let project = PatchHeadProjection::new(store, name, config, rng);
        let extract = LipAttentionExtraction::finish(parts, store, name, config, rng);
        BasePredictor {
            config: config.clone(),
            repr,
            extract,
            project,
        }
    }

    /// `x: [b, T, c] → Ŷ_base: [b, L, c]`.
    pub fn forward(&self, g: &mut Graph, x: Var, training: bool, rng: &mut StdRng) -> Var {
        let repr = self.repr.forward(g, x);
        let h = self.extract.forward(g, repr.tokens, training, rng);
        self.project.forward(g, h, &repr)
    }

    /// The configuration this backbone was built with.
    pub fn config(&self) -> &LiPFormerConfig {
        &self.config
    }

    /// Split into boxed stage objects (for `ComposedForecaster`).
    pub fn into_stages(self) -> crate::stages::StageSet {
        crate::stages::StageSet {
            repr: Box::new(self.repr),
            extract: Box::new(self.extract),
            project: Box::new(self.project),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lip_autograd::gradcheck::check_gradients;
    use lip_tensor::Tensor;
    use lip_rng::SeedableRng;

    fn cfg() -> LiPFormerConfig {
        let mut c = LiPFormerConfig::small(24, 12, 2);
        c.patch_len = 6;
        c.hidden = 8;
        c.heads = 2;
        c.dropout = 0.0;
        c
    }

    #[test]
    fn forward_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let bp = BasePredictor::new(&mut store, "bp", &cfg(), &mut rng);
        let mut g = Graph::new(&store);
        let x = g.constant(Tensor::randn(&[3, 24, 2], &mut rng));
        let y = bp.forward(&mut g, x, false, &mut rng);
        assert_eq!(g.shape(y), &[3, 12, 2]);
    }

    #[test]
    fn ablation_variants_all_run() {
        let mut rng = StdRng::seed_from_u64(2);
        for (ln, ffn, cross, inter) in [
            (true, false, true, true),
            (false, true, true, true),
            (true, true, true, true),
            (false, false, false, true),
            (false, false, true, false),
            (false, false, false, false),
        ] {
            let mut c = cfg();
            c.with_layer_norm = ln;
            c.with_ffn = ffn;
            c.use_cross_patch = cross;
            c.use_inter_patch = inter;
            let mut store = ParamStore::new();
            let bp = BasePredictor::new(&mut store, "bp", &c, &mut rng);
            let mut g = Graph::new(&store);
            let x = g.constant(Tensor::randn(&[2, 24, 2], &mut rng));
            let y = bp.forward(&mut g, x, false, &mut rng);
            assert_eq!(g.shape(y), &[2, 12, 2]);
            assert!(!g.value(y).has_non_finite());
        }
    }

    #[test]
    fn ffn_ablation_adds_parameters() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut plain_store = ParamStore::new();
        let _ = BasePredictor::new(&mut plain_store, "bp", &cfg(), &mut rng);
        let mut ffn_store = ParamStore::new();
        let _ = BasePredictor::new(&mut ffn_store, "bp", &cfg().with_ffns(), &mut rng);
        assert!(ffn_store.num_scalars() > plain_store.num_scalars());
        // FFN adds 8·hd² + 5·hd
        let hd = cfg().hidden;
        assert_eq!(
            ffn_store.num_scalars() - plain_store.num_scalars(),
            8 * hd * hd + 5 * hd
        );
    }

    #[test]
    fn level_shift_equivariance() {
        // Instance norm makes the backbone equivariant to constant offsets:
        // predict(x + k) == predict(x) + k.
        let mut rng = StdRng::seed_from_u64(4);
        let mut store = ParamStore::new();
        let bp = BasePredictor::new(&mut store, "bp", &cfg(), &mut rng);
        let x = Tensor::randn(&[1, 24, 2], &mut rng);
        let run = |input: Tensor| {
            let mut rng2 = StdRng::seed_from_u64(0);
            let mut g = Graph::new(&store);
            let xv = g.constant(input);
            let y = bp.forward(&mut g, xv, false, &mut rng2);
            g.value(y).clone()
        };
        let y0 = run(x.clone());
        let y1 = run(x.add_scalar(100.0));
        let d = y1.sub(&y0.add_scalar(100.0)).abs().max_value();
        assert!(d < 1e-2, "level-shift equivariance violated: {d}");
    }

    #[test]
    fn channels_are_independent() {
        // Changing channel 1's history must not affect channel 0's forecast.
        let mut rng = StdRng::seed_from_u64(5);
        let mut store = ParamStore::new();
        let bp = BasePredictor::new(&mut store, "bp", &cfg(), &mut rng);
        let x = Tensor::randn(&[1, 24, 2], &mut rng);
        let mut x2 = x.clone();
        for t in 0..24 {
            x2.data_mut()[t * 2 + 1] += 7.0; // perturb channel 1 only
        }
        let run = |input: Tensor| {
            let mut rng2 = StdRng::seed_from_u64(0);
            let mut g = Graph::new(&store);
            let xv = g.constant(input);
            let y = bp.forward(&mut g, xv, false, &mut rng2);
            g.value(y).clone()
        };
        let y0 = run(x);
        let y1 = run(x2);
        let ch0_diff = (0..12)
            .map(|t| (y1.at(&[0, t, 0]) - y0.at(&[0, t, 0])).abs())
            .fold(0.0f32, f32::max);
        assert!(ch0_diff < 1e-5, "channel independence violated: {ch0_diff}");
    }

    #[test]
    fn gradients_check_tiny() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut c = LiPFormerConfig::small(8, 4, 1);
        c.patch_len = 4;
        c.hidden = 4;
        c.heads = 1;
        c.dropout = 0.0;
        let mut store = ParamStore::new();
        let bp = BasePredictor::new(&mut store, "bp", &c, &mut rng);
        let x = Tensor::randn(&[2, 8, 1], &mut rng).mul_scalar(0.5);
        let y = Tensor::randn(&[2, 4, 1], &mut rng).mul_scalar(0.5);
        check_gradients(
            &mut store,
            &move |g| {
                let mut rng2 = StdRng::seed_from_u64(0);
                let xv = g.constant(x.clone());
                let yv = g.constant(y.clone());
                let pred = bp.forward(g, xv, false, &mut rng2);
                g.mse_loss(pred, yv)
            },
            1e-2,
            4e-2,
        )
        .unwrap();
    }
}
