//! The **Base Predictor** backbone (paper §III-C1, Fig. 4): instance
//! normalization → channel-independent patching → Cross-Patch attention →
//! Inter-Patch attention → two single-layer MLP heads. No Positional
//! Encoding, no Layer Normalization, no Feed-Forward Networks — unless the
//! Table X ablation switches re-insert the latter two.

use lip_autograd::{Graph, ParamStore, Var};
use lip_nn::{Activation, Dropout, FeedForward, LayerNorm, Linear};
use lip_rng::rngs::StdRng;
use lip_rng::Rng;

use crate::config::LiPFormerConfig;
use crate::cross_patch::CrossPatch;
use crate::inter_patch::InterPatch;
use crate::patching::Patching;
use crate::revin::InstanceNorm;

/// LiPFormer's autoregressive backbone producing `Ŷ_base`.
#[derive(Debug, Clone)]
pub struct BasePredictor {
    config: LiPFormerConfig,
    patching: Patching,
    cross: CrossPatch,
    inter: InterPatch,
    /// Head stage 1: token axis `n → nt`.
    head_tokens: Linear,
    /// Head stage 2: feature axis `hd → pl`.
    head_features: Linear,
    dropout: Dropout,
    /// Table X "+LN" ablation.
    ln_cross: Option<LayerNorm>,
    ln_inter: Option<LayerNorm>,
    /// Table X "+FFNs" ablation.
    ffn: Option<FeedForward>,
}

impl BasePredictor {
    /// Register all backbone parameters in `store`.
    pub fn new(store: &mut ParamStore, name: &str, config: &LiPFormerConfig, rng: &mut impl Rng) -> Self {
        config.validate();
        let n = config.num_patches();
        let nt = config.num_target_patches();
        let cross = CrossPatch::new(
            store,
            &format!("{name}.cross"),
            n,
            config.patch_len,
            config.hidden,
            config.heads,
            config.use_cross_patch,
            rng,
        );
        let inter = InterPatch::new(
            store,
            &format!("{name}.inter"),
            config.hidden,
            config.heads,
            config.use_inter_patch,
            rng,
        );
        let head_tokens = Linear::new(store, &format!("{name}.head_tokens"), n, nt, true, rng);
        let head_features = Linear::new(
            store,
            &format!("{name}.head_features"),
            config.hidden,
            config.patch_len,
            true,
            rng,
        );
        // Damp the output projection: with last-value instance normalization
        // a near-zero head makes the initial forecast the "repeat last
        // value" naive predictor, a far better starting point than a random
        // projection of random attention features.
        for id in head_features.param_ids() {
            let damped = store.value(id).mul_scalar(0.05);
            store.set_value(id, damped);
        }
        let ln_cross = config
            .with_layer_norm
            .then(|| LayerNorm::new(store, &format!("{name}.ln_cross"), config.hidden));
        let ln_inter = config
            .with_layer_norm
            .then(|| LayerNorm::new(store, &format!("{name}.ln_inter"), config.hidden));
        let ffn = config.with_ffn.then(|| {
            FeedForward::new(
                store,
                &format!("{name}.ffn"),
                config.hidden,
                4,
                Activation::Gelu,
                rng,
            )
        });
        BasePredictor {
            patching: Patching {
                patch_len: config.patch_len,
            },
            cross,
            inter,
            head_tokens,
            head_features,
            dropout: Dropout::new(config.dropout),
            ln_cross,
            ln_inter,
            ffn,
            config: config.clone(),
        }
    }

    /// `x: [b, T, c] → Ŷ_base: [b, L, c]`.
    pub fn forward(&self, g: &mut Graph, x: Var, training: bool, rng: &mut StdRng) -> Var {
        let shape = g.shape(x).to_vec();
        let (b, c) = (shape[0], shape[2]);
        assert_eq!(shape[1], self.config.seq_len, "input length mismatch");
        assert_eq!(c, self.config.channels, "channel count mismatch");

        // instance normalization (re-added at the end)
        let (normed, anchor) = InstanceNorm.normalize(g, x);

        // channel independence + patching: [b·c, n, pl]
        let patched = self.patching.apply(g, normed);

        // Cross-Patch trend mixing → [b·c, n, hd]
        let mut h = self.cross.forward(g, patched);
        if let Some(ln) = &self.ln_cross {
            h = ln.forward(g, h);
        }
        h = self.dropout.forward(g, h, rng, training);

        // Inter-Patch attention (residual) → [b·c, n, hd]
        let mut h = self.inter.forward(g, h);
        if let Some(ffn) = &self.ffn {
            let f = ffn.forward(g, h);
            h = g.add(f, h);
        }
        if let Some(ln) = &self.ln_inter {
            h = ln.forward(g, h);
        }
        h = self.dropout.forward(g, h, rng, training);

        // head: [b·c, n, hd] → [b·c, hd, n] → n→nt → [b·c, nt, hd] → hd→pl
        let swapped = g.transpose(h, 1, 2);
        let tokens = self.head_tokens.forward(g, swapped); // [b·c, hd, nt]
        let back = g.transpose(tokens, 1, 2); // [b·c, nt, hd]
        let patches_out = self.head_features.forward(g, back); // [b·c, nt, pl]

        // flatten target patches and trim the horizon
        let nt = self.config.num_target_patches();
        let flat = g.reshape(patches_out, &[b * c, nt * self.config.patch_len]);
        let trimmed = g.slice_axis(flat, 1, 0, self.config.pred_len);

        // back to [b, L, c] and denormalize
        let merged = self.patching.merge_channels(g, trimmed, b, c);
        InstanceNorm.denormalize(g, merged, anchor)
    }

    /// The configuration this backbone was built with.
    pub fn config(&self) -> &LiPFormerConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lip_autograd::gradcheck::check_gradients;
    use lip_tensor::Tensor;
    use lip_rng::SeedableRng;

    fn cfg() -> LiPFormerConfig {
        let mut c = LiPFormerConfig::small(24, 12, 2);
        c.patch_len = 6;
        c.hidden = 8;
        c.heads = 2;
        c.dropout = 0.0;
        c
    }

    #[test]
    fn forward_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let bp = BasePredictor::new(&mut store, "bp", &cfg(), &mut rng);
        let mut g = Graph::new(&store);
        let x = g.constant(Tensor::randn(&[3, 24, 2], &mut rng));
        let y = bp.forward(&mut g, x, false, &mut rng);
        assert_eq!(g.shape(y), &[3, 12, 2]);
    }

    #[test]
    fn ablation_variants_all_run() {
        let mut rng = StdRng::seed_from_u64(2);
        for (ln, ffn, cross, inter) in [
            (true, false, true, true),
            (false, true, true, true),
            (true, true, true, true),
            (false, false, false, true),
            (false, false, true, false),
            (false, false, false, false),
        ] {
            let mut c = cfg();
            c.with_layer_norm = ln;
            c.with_ffn = ffn;
            c.use_cross_patch = cross;
            c.use_inter_patch = inter;
            let mut store = ParamStore::new();
            let bp = BasePredictor::new(&mut store, "bp", &c, &mut rng);
            let mut g = Graph::new(&store);
            let x = g.constant(Tensor::randn(&[2, 24, 2], &mut rng));
            let y = bp.forward(&mut g, x, false, &mut rng);
            assert_eq!(g.shape(y), &[2, 12, 2]);
            assert!(!g.value(y).has_non_finite());
        }
    }

    #[test]
    fn ffn_ablation_adds_parameters() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut plain_store = ParamStore::new();
        let _ = BasePredictor::new(&mut plain_store, "bp", &cfg(), &mut rng);
        let mut ffn_store = ParamStore::new();
        let _ = BasePredictor::new(&mut ffn_store, "bp", &cfg().with_ffns(), &mut rng);
        assert!(ffn_store.num_scalars() > plain_store.num_scalars());
        // FFN adds 8·hd² + 5·hd
        let hd = cfg().hidden;
        assert_eq!(
            ffn_store.num_scalars() - plain_store.num_scalars(),
            8 * hd * hd + 5 * hd
        );
    }

    #[test]
    fn level_shift_equivariance() {
        // Instance norm makes the backbone equivariant to constant offsets:
        // predict(x + k) == predict(x) + k.
        let mut rng = StdRng::seed_from_u64(4);
        let mut store = ParamStore::new();
        let bp = BasePredictor::new(&mut store, "bp", &cfg(), &mut rng);
        let x = Tensor::randn(&[1, 24, 2], &mut rng);
        let run = |input: Tensor| {
            let mut rng2 = StdRng::seed_from_u64(0);
            let mut g = Graph::new(&store);
            let xv = g.constant(input);
            let y = bp.forward(&mut g, xv, false, &mut rng2);
            g.value(y).clone()
        };
        let y0 = run(x.clone());
        let y1 = run(x.add_scalar(100.0));
        let d = y1.sub(&y0.add_scalar(100.0)).abs().max_value();
        assert!(d < 1e-2, "level-shift equivariance violated: {d}");
    }

    #[test]
    fn channels_are_independent() {
        // Changing channel 1's history must not affect channel 0's forecast.
        let mut rng = StdRng::seed_from_u64(5);
        let mut store = ParamStore::new();
        let bp = BasePredictor::new(&mut store, "bp", &cfg(), &mut rng);
        let x = Tensor::randn(&[1, 24, 2], &mut rng);
        let mut x2 = x.clone();
        for t in 0..24 {
            x2.data_mut()[t * 2 + 1] += 7.0; // perturb channel 1 only
        }
        let run = |input: Tensor| {
            let mut rng2 = StdRng::seed_from_u64(0);
            let mut g = Graph::new(&store);
            let xv = g.constant(input);
            let y = bp.forward(&mut g, xv, false, &mut rng2);
            g.value(y).clone()
        };
        let y0 = run(x);
        let y1 = run(x2);
        let ch0_diff = (0..12)
            .map(|t| (y1.at(&[0, t, 0]) - y0.at(&[0, t, 0])).abs())
            .fold(0.0f32, f32::max);
        assert!(ch0_diff < 1e-5, "channel independence violated: {ch0_diff}");
    }

    #[test]
    fn gradients_check_tiny() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut c = LiPFormerConfig::small(8, 4, 1);
        c.patch_len = 4;
        c.hidden = 4;
        c.heads = 1;
        c.dropout = 0.0;
        let mut store = ParamStore::new();
        let bp = BasePredictor::new(&mut store, "bp", &c, &mut rng);
        let x = Tensor::randn(&[2, 8, 1], &mut rng).mul_scalar(0.5);
        let y = Tensor::randn(&[2, 4, 1], &mut rng).mul_scalar(0.5);
        check_gradients(
            &mut store,
            &move |g| {
                let mut rng2 = StdRng::seed_from_u64(0);
                let xv = g.constant(x.clone());
                let yv = g.constant(y.clone());
                let pred = bp.forward(g, xv, false, &mut rng2);
                g.mse_loss(pred, yv)
            },
            1e-2,
            4e-2,
        )
        .unwrap();
    }
}
