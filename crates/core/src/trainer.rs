//! Training harnesses: contrastive pre-training of the dual encoders and
//! Smooth-L1 prediction training with AdamW, gradient clipping, LR
//! scheduling, early stopping (patience 3) and best-checkpoint restore —
//! the protocol of paper §IV-A2.

use std::time::Instant;

use lip_autograd::Graph;
use lip_data::window::WindowDataset;
use lip_nn::{AdamW, EarlyStopping, GradClip, LrSchedule, Optimizer};
use lip_rng::rngs::StdRng;
use lip_rng::SeedableRng;

use crate::forecaster::{Forecaster, WeaklySupervised};
use crate::metrics::ForecastMetrics;

/// Training hyperparameters.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Prediction-training epochs (paper: 10 with early stopping).
    pub epochs: usize,
    /// Contrastive pre-training epochs for the dual encoders.
    pub pretrain_epochs: usize,
    /// Mini-batch size (paper default 256; 32 for the efficiency studies).
    pub batch_size: usize,
    /// AdamW learning rate.
    pub lr: f32,
    /// AdamW decoupled weight decay.
    pub weight_decay: f32,
    /// Early-stopping patience (paper: 3).
    pub patience: usize,
    /// Optional global-norm gradient clip.
    pub clip: Option<f32>,
    /// Smooth-L1 β.
    pub smooth_l1_beta: f32,
    /// Shuffling / dropout seed.
    pub seed: u64,
    /// Learning-rate schedule.
    pub schedule: LrSchedule,
}

lip_serde::json_struct!(TrainConfig {
    epochs,
    pretrain_epochs,
    batch_size,
    lr,
    weight_decay,
    patience,
    clip,
    smooth_l1_beta,
    seed,
    schedule,
});

impl TrainConfig {
    /// The paper's protocol at full scale.
    pub fn paper() -> Self {
        TrainConfig {
            epochs: 10,
            pretrain_epochs: 5,
            batch_size: 256,
            lr: 1e-3,
            weight_decay: 1e-4,
            patience: 3,
            clip: Some(5.0),
            smooth_l1_beta: 1.0,
            seed: 2024,
            schedule: LrSchedule::Constant,
        }
    }

    /// A reduced protocol for CPU-scale experiment sweeps.
    pub fn fast() -> Self {
        TrainConfig {
            epochs: 5,
            pretrain_epochs: 2,
            batch_size: 32,
            lr: 2e-3,
            weight_decay: 1e-4,
            patience: 3,
            clip: Some(5.0),
            smooth_l1_beta: 1.0,
            seed: 2024,
            schedule: LrSchedule::Constant,
        }
    }
}

/// What happened during one `fit` run.
#[derive(Debug, Clone)]
pub struct TrainReport {
    pub epochs_run: usize,
    pub best_epoch: usize,
    pub best_val_loss: f32,
    /// Mean training loss per epoch.
    pub train_losses: Vec<f32>,
    /// Validation MSE per epoch.
    pub val_losses: Vec<f32>,
    /// Wall-clock seconds per epoch (the paper's "training time" column).
    pub epoch_seconds: Vec<f64>,
    /// Mean contrastive loss per pre-training epoch.
    pub pretrain_losses: Vec<f32>,
}

lip_serde::json_struct!(TrainReport {
    epochs_run,
    best_epoch,
    best_val_loss,
    train_losses,
    val_losses,
    epoch_seconds,
    pretrain_losses,
});

impl TrainReport {
    /// Mean seconds per training epoch.
    pub fn mean_epoch_seconds(&self) -> f64 {
        if self.epoch_seconds.is_empty() {
            0.0
        } else {
            self.epoch_seconds.iter().sum::<f64>() / self.epoch_seconds.len() as f64
        }
    }
}

/// Drives pre-training and prediction training for any [`Forecaster`].
pub struct Trainer {
    config: TrainConfig,
    pretrain_losses: Vec<f32>,
}

impl Trainer {
    /// New trainer with `config`.
    pub fn new(config: TrainConfig) -> Self {
        Trainer {
            config,
            pretrain_losses: Vec::new(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// Contrastive pre-training of the dual encoders (paper §III-B), then
    /// freeze them. Weight decay is disabled here so parameters untouched by
    /// the contrastive loss are not decayed. Returns per-epoch mean losses.
    pub fn pretrain(
        &mut self,
        model: &mut (impl WeaklySupervised + ?Sized),
        train: &WindowDataset,
    ) -> Vec<f32> {
        let mut opt = AdamW::new(self.config.lr, 0.0);
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ 0x9e37_79b9);
        let mut losses = Vec::with_capacity(self.config.pretrain_epochs);
        for _epoch in 0..self.config.pretrain_epochs {
            let order = train.epoch_order(true, &mut rng);
            let mut epoch_loss = 0.0f64;
            let mut batches = 0usize;
            for chunk in WindowDataset::batch_indices(&order, self.config.batch_size) {
                // contrastive learning needs ≥ 2 pairs per batch
                if chunk.len() < 2 {
                    continue;
                }
                let batch = train.batch(&chunk);
                let grads = {
                    let mut g = Graph::new(model.store());
                    let loss = model.contrastive_loss(&mut g, &batch);
                    epoch_loss += g.value(loss).item() as f64;
                    g.backward(loss)
                };
                grads.apply_to(model.store_mut());
                if let Some(c) = self.config.clip {
                    GradClip::new(c).apply(model.store_mut());
                }
                opt.step(model.store_mut());
                batches += 1;
            }
            losses.push(if batches == 0 {
                f32::NAN
            } else {
                (epoch_loss / batches as f64) as f32
            });
        }
        model.freeze_encoders();
        self.pretrain_losses = losses.clone();
        losses
    }

    /// Prediction training with Smooth-L1 loss, early stopping on validation
    /// MSE, and best-checkpoint restore.
    pub fn fit(
        &mut self,
        model: &mut (impl Forecaster + ?Sized),
        train: &WindowDataset,
        val: &WindowDataset,
    ) -> TrainReport {
        assert!(!train.is_empty(), "training split is empty");
        let mut opt = AdamW::new(self.config.lr, self.config.weight_decay);
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut stopper = EarlyStopping::new(self.config.patience);
        let mut best_snapshot = model.store().snapshot();

        let mut report = TrainReport {
            epochs_run: 0,
            best_epoch: 0,
            best_val_loss: f32::INFINITY,
            train_losses: Vec::new(),
            val_losses: Vec::new(),
            epoch_seconds: Vec::new(),
            pretrain_losses: self.pretrain_losses.clone(),
        };

        for epoch in 0..self.config.epochs {
            opt.set_lr(self.config.schedule.lr_at(self.config.lr, epoch));
            let started = Instant::now();
            let order = train.epoch_order(true, &mut rng);
            let mut epoch_loss = 0.0f64;
            let mut batches = 0usize;
            for chunk in WindowDataset::batch_indices(&order, self.config.batch_size) {
                let batch = train.batch(&chunk);
                let grads = {
                    let mut g = Graph::new(model.store());
                    let pred = model.forward(&mut g, &batch, true, &mut rng);
                    let target = g.constant(batch.y.clone());
                    let loss = g.smooth_l1_loss(pred, target, self.config.smooth_l1_beta);
                    epoch_loss += g.value(loss).item() as f64;
                    g.backward(loss)
                };
                grads.apply_to(model.store_mut());
                if let Some(c) = self.config.clip {
                    GradClip::new(c).apply(model.store_mut());
                }
                opt.step(model.store_mut());
                batches += 1;
            }
            report.epoch_seconds.push(started.elapsed().as_secs_f64());
            report
                .train_losses
                .push((epoch_loss / batches.max(1) as f64) as f32);
            report.epochs_run = epoch + 1;

            let val_mse = if val.is_empty() {
                report.train_losses[epoch]
            } else {
                ForecastMetrics::evaluate(&*model, val, self.config.batch_size).mse
            };
            report.val_losses.push(val_mse);
            if stopper.observe(epoch, val_mse) {
                best_snapshot = model.store().snapshot();
            }
            if stopper.should_stop() {
                break;
            }
        }

        model.store_mut().restore(&best_snapshot);
        report.best_epoch = stopper.best_epoch();
        report.best_val_loss = stopper.best();
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LiPFormerConfig;
    use crate::model::LiPFormer;
    use lip_data::generators::{generate, DatasetName, GeneratorConfig};
    use lip_data::pipeline::prepare;

    fn tiny_setup() -> (LiPFormer, lip_data::pipeline::PreparedData) {
        let ds = generate(DatasetName::ETTh1, GeneratorConfig::test(3));
        let prep = prepare(&ds, 24, 8);
        let mut cfg = LiPFormerConfig::small(24, 8, prep.channels);
        cfg.patch_len = 6;
        cfg.hidden = 8;
        cfg.heads = 2;
        cfg.encoder_hidden = 8;
        cfg.dropout = 0.0;
        (LiPFormer::new(cfg, &prep.spec, 3), prep)
    }

    #[test]
    fn training_reduces_loss() {
        let (mut model, prep) = tiny_setup();
        let mut trainer = Trainer::new(TrainConfig {
            epochs: 3,
            pretrain_epochs: 1,
            batch_size: 64,
            lr: 2e-3,
            ..TrainConfig::fast()
        });
        trainer.pretrain(&mut model, &prep.train);
        let report = trainer.fit(&mut model, &prep.train, &prep.val);
        assert!(report.epochs_run >= 1);
        assert!(report.best_val_loss.is_finite());
        let first = report.train_losses[0];
        let last = *report.train_losses.last().unwrap();
        assert!(
            last < first,
            "training loss should decrease: {first} → {last}"
        );
    }

    #[test]
    fn pretrain_losses_finite_and_reported() {
        let (mut model, prep) = tiny_setup();
        let mut trainer = Trainer::new(TrainConfig {
            epochs: 1,
            pretrain_epochs: 2,
            batch_size: 64,
            ..TrainConfig::fast()
        });
        let losses = trainer.pretrain(&mut model, &prep.train);
        assert_eq!(losses.len(), 2);
        assert!(losses.iter().all(|l| l.is_finite()));
        let report = trainer.fit(&mut model, &prep.train, &prep.val);
        assert_eq!(report.pretrain_losses, losses);
    }

    #[test]
    fn early_stopping_restores_best() {
        let (mut model, prep) = tiny_setup();
        let mut trainer = Trainer::new(TrainConfig {
            epochs: 2,
            pretrain_epochs: 0,
            batch_size: 64,
            ..TrainConfig::fast()
        });
        let report = trainer.fit(&mut model, &prep.train, &prep.val);
        // after restore, evaluating again reproduces the best val loss
        let again = ForecastMetrics::evaluate(&model, &prep.val, 64);
        assert!(
            (again.mse - report.best_val_loss).abs() < 1e-4,
            "restored model mse {} vs best {}",
            again.mse,
            report.best_val_loss
        );
    }
}
