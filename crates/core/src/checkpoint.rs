//! Single-file model checkpoints: every parameter tensor plus a JSON header
//! (model configuration, names, freeze flags) in one length-prefixed binary
//! bundle, so trained models survive process restarts and ship to edge
//! deployments as one artifact.
//!
//! Layout: `magic:u32 | header_len:u32 | header JSON | (frame_len:u32 |
//! tensor frame)*`, all little-endian; tensor frames are
//! [`lip_tensor::Tensor::to_bytes`] encodings in registration order.
//!
//! **Format versions.** v1 headers predate the stage decomposition and
//! carry no `stage_layout`; loading one synthesizes the layout from the
//! config's (default) stage composition — the compat shim. v2 headers
//! record which parameter names belong to each pipeline stage
//! (representation / extraction / projection / enriching), which is what
//! makes a pretrained backbone portable: [`restore_stage`] moves one
//! stage's parameters into any model that hosts the same stage, regardless
//! of what the other stages look like.

use std::io::Write;
use std::path::Path;

use lip_autograd::ParamStore;
use lip_tensor::Tensor;

use crate::config::{ExtractKind, LiPFormerConfig, ProjKind};

const MAGIC: u32 = 0x4C49_5043; // "LIPC"

/// Current checkpoint format version written by [`save`].
pub const FORMAT_VERSION: u32 = 2;

/// A pipeline stage, as a checkpoint namespace selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Normalization + patching (parameter-free today, reserved).
    Representation,
    /// The token-to-feature backbone.
    Extraction,
    /// The feature-to-forecast head.
    Projection,
    /// The weak-data-enriching dual encoder.
    Enriching,
}

/// Which parameter names belong to which pipeline stage — the checkpoint's
/// stage-scoped namespaces (full names, in registration order).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageLayout {
    /// Representation-stage parameter names (empty today, reserved).
    pub representation: Vec<String>,
    /// Extraction-stage parameter names.
    pub extraction: Vec<String>,
    /// Projection-stage parameter names.
    pub projection: Vec<String>,
    /// Weak-enriching parameter names (empty for base-only models).
    pub enriching: Vec<String>,
}

lip_serde::json_struct!(StageLayout {
    representation,
    extraction,
    projection,
    enriching,
});

impl StageLayout {
    /// Classify `param_names` into stages by the prefix conventions of the
    /// model builder (`base.*` stage params, `enrich.*` dual encoder). Which
    /// `base.*` prefixes belong to extraction vs projection depends on
    /// `config.stages`. A name no stage claims is an error — that is the
    /// mismatch [`load_bytes`] rejects.
    pub fn classify(config: &LiPFormerConfig, param_names: &[String]) -> Result<Self, String> {
        let extraction_prefixes: &[&str] = match config.stages.extraction {
            ExtractKind::LipAttention => &[
                "base.cross.",
                "base.inter.",
                "base.ln_cross.",
                "base.ln_inter.",
                "base.ffn.",
            ],
            ExtractKind::PatchTst => &["base.embed.", "base.pe", "base.layer"],
        };
        let projection_prefixes: &[&str] = match config.stages.projection {
            ProjKind::PatchHead => &["base.head_tokens.", "base.head_features."],
            ProjKind::FlattenLinear => &["base.head."],
        };
        let mut layout = StageLayout {
            representation: vec![],
            extraction: vec![],
            projection: vec![],
            enriching: vec![],
        };
        for name in param_names {
            if extraction_prefixes.iter().any(|p| name.starts_with(p)) {
                layout.extraction.push(name.clone());
            } else if projection_prefixes.iter().any(|p| name.starts_with(p)) {
                layout.projection.push(name.clone());
            } else if name.starts_with("enrich.") {
                layout.enriching.push(name.clone());
            } else {
                return Err(format!(
                    "parameter '{name}' belongs to no stage of composition {:?}",
                    config.stages
                ));
            }
        }
        Ok(layout)
    }

    /// The parameter names of one stage.
    pub fn names(&self, stage: Stage) -> &[String] {
        match stage {
            Stage::Representation => &self.representation,
            Stage::Extraction => &self.extraction,
            Stage::Projection => &self.projection,
            Stage::Enriching => &self.enriching,
        }
    }
}

/// Checkpoint metadata stored in the JSON header.
#[derive(Debug, Clone)]
pub struct CheckpointHeader {
    /// Format version for forward compatibility.
    pub version: u32,
    /// The backbone configuration the parameters belong to.
    pub config: LiPFormerConfig,
    /// Registered parameter names, in order.
    pub param_names: Vec<String>,
    /// Which parameters were frozen when saved.
    pub frozen: Vec<bool>,
    /// Stage-scoped parameter namespaces. `None` only while decoding a v1
    /// header; [`load_bytes`] synthesizes it before returning, so loaded
    /// headers always carry a layout.
    pub stage_layout: Option<StageLayout>,
}

// Hand-written (rather than `json_struct!`) because `stage_layout` is
// absent from v1 headers: a missing field decodes to `None`.
impl lip_serde::ToJson for CheckpointHeader {
    fn to_json(&self) -> lip_serde::Json {
        let mut fields = vec![
            ("version".to_string(), self.version.to_json()),
            ("config".to_string(), self.config.to_json()),
            ("param_names".to_string(), self.param_names.to_json()),
            ("frozen".to_string(), self.frozen.to_json()),
        ];
        if let Some(layout) = &self.stage_layout {
            fields.push(("stage_layout".to_string(), layout.to_json()));
        }
        lip_serde::Json::Object(fields)
    }
}

impl lip_serde::FromJson for CheckpointHeader {
    fn from_json(v: &lip_serde::Json) -> Result<Self, lip_serde::JsonError> {
        let stage_layout = match v.get("stage_layout") {
            Some(j) if !matches!(j, lip_serde::Json::Null) => {
                Some(lip_serde::FromJson::from_json(j)?)
            }
            _ => None,
        };
        Ok(CheckpointHeader {
            version: v.field("version")?,
            config: v.field("config")?,
            param_names: v.field("param_names")?,
            frozen: v.field("frozen")?,
            stage_layout,
        })
    }
}

/// Errors from checkpoint I/O.
#[derive(Debug)]
pub enum CheckpointError {
    Io(std::io::Error),
    Corrupt(String),
    /// The checkpoint does not match the model it is being loaded into.
    Mismatch(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint i/o error: {e}"),
            CheckpointError::Corrupt(m) => write!(f, "corrupt checkpoint: {m}"),
            CheckpointError::Mismatch(m) => write!(f, "checkpoint mismatch: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Serialize `store` (with `config`) to `path`.
pub fn save(
    path: &Path,
    config: &LiPFormerConfig,
    store: &ParamStore,
) -> Result<(), CheckpointError> {
    let param_names: Vec<String> = store.ids().map(|id| store.name(id).to_string()).collect();
    let stage_layout = StageLayout::classify(config, &param_names)
        .map_err(CheckpointError::Mismatch)?;
    let header = CheckpointHeader {
        version: FORMAT_VERSION,
        config: config.clone(),
        param_names,
        frozen: store.ids().map(|id| store.is_frozen(id)).collect(),
        stage_layout: Some(stage_layout),
    };
    let header_json = lip_serde::to_vec(&header);

    let mut file = std::io::BufWriter::new(std::fs::File::create(path)?);
    file.write_all(&MAGIC.to_le_bytes())?;
    file.write_all(&(header_json.len() as u32).to_le_bytes())?;
    file.write_all(&header_json)?;
    for id in store.ids() {
        let frame = store.value(id).to_bytes();
        file.write_all(&(frame.len() as u32).to_le_bytes())?;
        file.write_all(&frame)?;
    }
    file.flush()?;
    Ok(())
}

/// Read a checkpoint's header and parameter tensors.
pub fn load(path: &Path) -> Result<(CheckpointHeader, Vec<Tensor>), CheckpointError> {
    let raw = std::fs::read(path)?;
    load_bytes(&raw)
}

/// Decode a checkpoint already in memory. Takes `&[u8]`, so concurrent
/// readers can decode one shared buffer (the serving cache does; the
/// shared-cache concurrency tests race it).
pub fn load_bytes(raw: &[u8]) -> Result<(CheckpointHeader, Vec<Tensor>), CheckpointError> {
    let mut cursor = 0usize;
    let take = |cursor: &mut usize, n: usize| -> Result<&[u8], CheckpointError> {
        if *cursor + n > raw.len() {
            return Err(CheckpointError::Corrupt("truncated bundle".into()));
        }
        let slice = &raw[*cursor..*cursor + n];
        *cursor += n;
        Ok(slice)
    };
    let magic = u32::from_le_bytes(take(&mut cursor, 4)?.try_into().expect("4 bytes"));
    if magic != MAGIC {
        return Err(CheckpointError::Corrupt("bad magic".into()));
    }
    let header_len =
        u32::from_le_bytes(take(&mut cursor, 4)?.try_into().expect("4 bytes")) as usize;
    let mut header: CheckpointHeader = lip_serde::from_slice(take(&mut cursor, header_len)?)
        .map_err(|e| CheckpointError::Corrupt(format!("header decode: {e}")))?;
    match header.version {
        1 => {
            // Compat shim: v1 monolith checkpoints predate stage_layout.
            // Synthesize it from the (default-composition) config so every
            // loaded header supports stage-scoped restores.
            let layout = StageLayout::classify(&header.config, &header.param_names)
                .map_err(CheckpointError::Corrupt)?;
            header.stage_layout = Some(layout);
        }
        2 => {
            // A v2 header must carry a layout that agrees with its own
            // config + parameter names: reject a checkpoint whose declared
            // stage namespaces don't match the parameters it ships.
            let expect = StageLayout::classify(&header.config, &header.param_names)
                .map_err(CheckpointError::Corrupt)?;
            match &header.stage_layout {
                Some(actual) if *actual == expect => {}
                Some(_) => {
                    return Err(CheckpointError::Corrupt(
                        "stage_layout does not match the checkpoint's config and parameters"
                            .into(),
                    ));
                }
                None => {
                    return Err(CheckpointError::Corrupt(
                        "v2 checkpoint missing stage_layout".into(),
                    ));
                }
            }
        }
        v => {
            return Err(CheckpointError::Corrupt(format!("unsupported version {v}")));
        }
    }
    let mut tensors = Vec::with_capacity(header.param_names.len());
    for i in 0..header.param_names.len() {
        let frame_len =
            u32::from_le_bytes(take(&mut cursor, 4)?.try_into().expect("4 bytes")) as usize;
        let frame = take(&mut cursor, frame_len)?;
        let t = Tensor::from_bytes(frame)
            .map_err(|e| CheckpointError::Corrupt(format!("tensor {i}: {e}")))?;
        tensors.push(t);
    }
    Ok((header, tensors))
}

/// Restore a checkpoint into a model's store, verifying name/shape agreement.
pub fn restore_into(
    header: &CheckpointHeader,
    tensors: &[Tensor],
    store: &mut ParamStore,
) -> Result<(), CheckpointError> {
    if header.param_names.len() != store.len() {
        return Err(CheckpointError::Mismatch(format!(
            "checkpoint has {} params, model has {}",
            header.param_names.len(),
            store.len()
        )));
    }
    for (i, id) in store.ids().enumerate().collect::<Vec<_>>() {
        if store.name(id) != header.param_names[i] {
            return Err(CheckpointError::Mismatch(format!(
                "param {i} name '{}' vs checkpoint '{}'",
                store.name(id),
                header.param_names[i]
            )));
        }
        if store.value(id).shape() != tensors[i].shape() {
            return Err(CheckpointError::Mismatch(format!(
                "param '{}' shape {:?} vs checkpoint {:?}",
                store.name(id),
                store.value(id).shape(),
                tensors[i].shape()
            )));
        }
    }
    for (i, id) in store.ids().enumerate().collect::<Vec<_>>() {
        store.set_value(id, tensors[i].clone());
        if header.frozen[i] {
            store.freeze(id);
        }
    }
    Ok(())
}

/// Restore only one stage's parameters from a checkpoint into `store`,
/// matching by name — the backbone-portability primitive: a pretrained
/// extraction stage restores into any model hosting the same extraction,
/// regardless of which projection head or enriching module sits around it.
///
/// Freeze flags are *not* applied (the caller decides what stays trainable
/// after a transfer). Returns the number of parameters restored.
pub fn restore_stage(
    header: &CheckpointHeader,
    tensors: &[Tensor],
    store: &mut ParamStore,
    stage: Stage,
) -> Result<usize, CheckpointError> {
    let layout = header.stage_layout.as_ref().ok_or_else(|| {
        CheckpointError::Mismatch("header has no stage layout (load via checkpoint::load)".into())
    })?;
    let names = layout.names(stage);
    let ids: Vec<_> = store.ids().collect();
    // resolve every (name → checkpoint frame, store param) pair before
    // mutating anything, so a failed restore leaves the store untouched
    let mut moves = Vec::with_capacity(names.len());
    for name in names {
        let src = header
            .param_names
            .iter()
            .position(|n| n == name)
            .ok_or_else(|| {
                CheckpointError::Corrupt(format!("stage layout names unknown parameter '{name}'"))
            })?;
        let id = ids
            .iter()
            .copied()
            .find(|&id| store.name(id) == name)
            .ok_or_else(|| {
                CheckpointError::Mismatch(format!(
                    "model has no parameter '{name}' for stage {stage:?}"
                ))
            })?;
        if store.value(id).shape() != tensors[src].shape() {
            return Err(CheckpointError::Mismatch(format!(
                "param '{}' shape {:?} vs checkpoint {:?}",
                name,
                store.value(id).shape(),
                tensors[src].shape()
            )));
        }
        moves.push((id, src));
    }
    for (id, src) in &moves {
        store.set_value(*id, tensors[*src].clone());
    }
    Ok(moves.len())
}

/// One-call deployment load: read a checkpoint, rebuild the model from the
/// header's configuration, and restore the saved parameters into it. `spec`
/// must be the covariate spec the saved model was constructed with (the
/// parameter-name check rejects a mismatched encoder layout).
pub fn load_model(
    path: &Path,
    spec: &lip_data::CovariateSpec,
) -> Result<crate::model::LiPFormer, CheckpointError> {
    use crate::forecaster::Forecaster;
    let (header, tensors) = load(path)?;
    let mut model = crate::model::LiPFormer::new(header.config.clone(), spec, 0);
    restore_into(&header, &tensors, model.store_mut())?;
    Ok(model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forecaster::{Forecaster, WeaklySupervised};
    use crate::model::LiPFormer;
    use lip_data::CovariateSpec;

    fn spec() -> CovariateSpec {
        CovariateSpec {
            numerical: 0,
            cardinalities: vec![],
            time_features: 4,
        }
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("lipformer_checkpoint_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let cfg = LiPFormerConfig::small(24, 8, 2);
        let mut model = LiPFormer::new(cfg.clone(), &spec(), 5);
        model.freeze_encoders();
        let path = tmp("roundtrip.ckpt");
        save(&path, &cfg, model.store()).unwrap();

        let (header, tensors) = load(&path).unwrap();
        assert_eq!(header.config.seq_len, 24);
        assert_eq!(header.param_names.len(), model.store().len());
        assert!(header.frozen.iter().any(|&f| f), "freeze flags preserved");

        let mut fresh = LiPFormer::new(cfg, &spec(), 999);
        restore_into(&header, &tensors, fresh.store_mut()).unwrap();
        for (a, b) in model.store().ids().zip(fresh.store().ids()) {
            assert_eq!(model.store().value(a), fresh.store().value(b));
            assert_eq!(model.store().is_frozen(a), fresh.store().is_frozen(b));
        }
        assert_eq!(model.num_parameters(), fresh.num_parameters());
    }

    #[test]
    fn load_model_rebuilds_an_equivalent_model() {
        let cfg = LiPFormerConfig::small(24, 8, 2);
        let model = LiPFormer::new(cfg.clone(), &spec(), 17);
        let path = tmp("load_model.ckpt");
        save(&path, &cfg, model.store()).unwrap();

        let loaded = load_model(&path, &spec()).unwrap();
        assert!(loaded.has_enriching());
        assert_eq!(loaded.num_parameters(), model.num_parameters());
        for (a, b) in model.store().ids().zip(loaded.store().ids()) {
            assert_eq!(model.store().value(a), loaded.store().value(b));
        }

        // a spec with a different encoder layout cannot host these params
        let wrong = CovariateSpec {
            numerical: 3,
            cardinalities: vec![4],
            time_features: 4,
        };
        assert!(matches!(
            load_model(&path, &wrong),
            Err(CheckpointError::Mismatch(_))
        ));
    }

    /// Split a checkpoint file into (header JSON, tensor-frame bytes) and
    /// rebuild it after header surgery — for forging v1 / corrupt headers.
    fn rebuild_with_header(raw: &[u8], edit: impl FnOnce(&mut Vec<(String, lip_serde::Json)>)) -> Vec<u8> {
        let header_len = u32::from_le_bytes(raw[4..8].try_into().unwrap()) as usize;
        let json: lip_serde::Json = lip_serde::from_slice(&raw[8..8 + header_len]).unwrap();
        let lip_serde::Json::Object(mut fields) = json else {
            panic!("header must be a JSON object");
        };
        edit(&mut fields);
        let new_json = lip_serde::Json::Object(fields).dump().into_bytes();
        let mut out = Vec::new();
        out.extend_from_slice(&raw[..4]);
        out.extend_from_slice(&(new_json.len() as u32).to_le_bytes());
        out.extend_from_slice(&new_json);
        out.extend_from_slice(&raw[8 + header_len..]);
        out
    }

    #[test]
    fn v1_monolith_checkpoint_loads_via_compat_shim() {
        // Forge a pre-stage-decomposition checkpoint: version 1, no
        // stage_layout, no config.stages field.
        let cfg = LiPFormerConfig::small(24, 8, 2);
        let model = LiPFormer::new(cfg.clone(), &spec(), 21);
        let path = tmp("v1_compat.ckpt");
        save(&path, &cfg, model.store()).unwrap();
        let raw = std::fs::read(&path).unwrap();
        let v1 = rebuild_with_header(&raw, |fields| {
            fields.retain(|(k, _)| k != "stage_layout");
            for (k, v) in fields.iter_mut() {
                if k == "version" {
                    *v = lip_serde::Json::Num(lip_serde::Num::U(1));
                }
                if k == "config" {
                    if let lip_serde::Json::Object(cfg_fields) = v {
                        cfg_fields.retain(|(ck, _)| ck != "stages");
                    }
                }
            }
        });
        let (header, tensors) = load_bytes(&v1).unwrap();
        assert_eq!(header.version, 1);
        assert!(header.config.stages.is_canonical());
        let layout = header.stage_layout.as_ref().expect("shim synthesizes layout");
        assert!(!layout.extraction.is_empty() && !layout.projection.is_empty());
        assert!(!layout.enriching.is_empty());
        let mut fresh = LiPFormer::new(header.config.clone(), &spec(), 0);
        restore_into(&header, &tensors, fresh.store_mut()).unwrap();
        for (a, b) in model.store().ids().zip(fresh.store().ids()) {
            assert_eq!(model.store().value(a), fresh.store().value(b));
        }
    }

    #[test]
    fn mismatched_stage_layout_rejected() {
        // A v2 checkpoint whose declared namespaces disagree with its own
        // config + parameters must not load.
        let cfg = LiPFormerConfig::small(24, 8, 1);
        let model = LiPFormer::without_enriching(cfg.clone(), 3);
        let path = tmp("bad_layout.ckpt");
        save(&path, &cfg, model.store()).unwrap();
        let raw = std::fs::read(&path).unwrap();
        // move the first extraction name into the projection namespace
        let garbled = rebuild_with_header(&raw, |fields| {
            for (k, v) in fields.iter_mut() {
                if k != "stage_layout" {
                    continue;
                }
                let lip_serde::Json::Object(layout) = v else { panic!() };
                let mut moved = None;
                for (lk, lv) in layout.iter_mut() {
                    if lk == "extraction" {
                        if let lip_serde::Json::Array(names) = lv {
                            moved = Some(names.remove(0));
                        }
                    }
                }
                for (lk, lv) in layout.iter_mut() {
                    if lk == "projection" {
                        if let lip_serde::Json::Array(names) = lv {
                            names.push(moved.take().expect("extraction had names"));
                        }
                    }
                }
            }
        });
        let err = load_bytes(&garbled).expect_err("garbled stage layout must fail");
        assert!(
            matches!(&err, CheckpointError::Corrupt(m) if m.contains("stage_layout")),
            "wrong error: {err}"
        );
        // and a v2 header with the layout stripped entirely is rejected too
        let stripped = rebuild_with_header(&raw, |fields| {
            fields.retain(|(k, _)| k != "stage_layout");
        });
        assert!(matches!(
            load_bytes(&stripped),
            Err(CheckpointError::Corrupt(_))
        ));
    }

    #[test]
    fn restore_stage_moves_a_backbone_across_heads() {
        use crate::config::{ProjKind, StageSpec};
        // Train-ish: a base-only model with the default composition...
        let cfg = LiPFormerConfig::small(24, 8, 2);
        let donor = LiPFormer::without_enriching(cfg.clone(), 31);
        let path = tmp("backbone.ckpt");
        save(&path, &cfg, donor.store()).unwrap();
        let (header, tensors) = load(&path).unwrap();

        // ...restores its extraction stage into a model with a *different*
        // projection head and an enriching module attached.
        let host_cfg = cfg.clone().with_stages(StageSpec {
            projection: ProjKind::FlattenLinear,
            ..StageSpec::default()
        });
        let mut host = LiPFormer::new(host_cfg, &spec(), 99);
        let moved = restore_stage(&header, &tensors, host.store_mut(), Stage::Extraction).unwrap();
        assert!(moved > 0, "extraction stage has parameters");

        // every extraction param transferred bit-exactly
        let layout = header.stage_layout.as_ref().unwrap();
        for name in &layout.extraction {
            let donor_id = donor.store().ids().find(|&i| donor.store().name(i) == name).unwrap();
            let host_id = host.store().ids().find(|&i| host.store().name(i) == name).unwrap();
            assert_eq!(donor.store().value(donor_id), host.store().value(host_id));
        }

        // a host with an incompatible extraction stage is rejected untouched
        let tst_cfg = cfg.clone().with_stages(StageSpec {
            extraction: crate::config::ExtractKind::PatchTst,
            ..StageSpec::default()
        });
        let mut wrong = LiPFormer::without_enriching(tst_cfg, 7);
        let before: Vec<Tensor> = wrong.store().ids().map(|i| wrong.store().value(i).clone()).collect();
        assert!(matches!(
            restore_stage(&header, &tensors, wrong.store_mut(), Stage::Extraction),
            Err(CheckpointError::Mismatch(_))
        ));
        for (i, id) in wrong.store().ids().enumerate() {
            assert_eq!(&before[i], wrong.store().value(id), "failed restore must not mutate");
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let path = tmp("badmagic.ckpt");
        std::fs::write(&path, [0u8; 64]).unwrap();
        assert!(matches!(load(&path), Err(CheckpointError::Corrupt(_))));
    }

    #[test]
    fn truncation_rejected() {
        let cfg = LiPFormerConfig::small(24, 8, 1);
        let model = LiPFormer::without_enriching(cfg.clone(), 1);
        let path = tmp("trunc.ckpt");
        save(&path, &cfg, model.store()).unwrap();
        let mut raw = std::fs::read(&path).unwrap();
        raw.truncate(raw.len() / 2);
        let path2 = tmp("trunc2.ckpt");
        std::fs::write(&path2, raw).unwrap();
        assert!(load(&path2).is_err());
    }

    #[test]
    fn architecture_mismatch_rejected() {
        let cfg_small = LiPFormerConfig::small(24, 8, 1);
        let model = LiPFormer::without_enriching(cfg_small.clone(), 1);
        let path = tmp("mismatch.ckpt");
        save(&path, &cfg_small, model.store()).unwrap();
        let (header, tensors) = load(&path).unwrap();

        let mut cfg_big = LiPFormerConfig::small(24, 8, 1);
        cfg_big.hidden = 2 * cfg_small.hidden;
        let mut other = LiPFormer::without_enriching(cfg_big, 1);
        assert!(matches!(
            restore_into(&header, &tensors, other.store_mut()),
            Err(CheckpointError::Mismatch(_))
        ));
    }
}
