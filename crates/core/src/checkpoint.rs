//! Single-file model checkpoints: every parameter tensor plus a JSON header
//! (model configuration, names, freeze flags) in one length-prefixed binary
//! bundle, so trained models survive process restarts and ship to edge
//! deployments as one artifact.
//!
//! Layout: `magic:u32 | header_len:u32 | header JSON | (frame_len:u32 |
//! tensor frame)*`, all little-endian; tensor frames are
//! [`lip_tensor::Tensor::to_bytes`] encodings in registration order.

use std::io::Write;
use std::path::Path;

use lip_autograd::ParamStore;
use lip_tensor::Tensor;

use crate::config::LiPFormerConfig;

const MAGIC: u32 = 0x4C49_5043; // "LIPC"

/// Checkpoint metadata stored in the JSON header.
#[derive(Debug, Clone)]
pub struct CheckpointHeader {
    /// Format version for forward compatibility.
    pub version: u32,
    /// The backbone configuration the parameters belong to.
    pub config: LiPFormerConfig,
    /// Registered parameter names, in order.
    pub param_names: Vec<String>,
    /// Which parameters were frozen when saved.
    pub frozen: Vec<bool>,
}

lip_serde::json_struct!(CheckpointHeader { version, config, param_names, frozen });

/// Errors from checkpoint I/O.
#[derive(Debug)]
pub enum CheckpointError {
    Io(std::io::Error),
    Corrupt(String),
    /// The checkpoint does not match the model it is being loaded into.
    Mismatch(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint i/o error: {e}"),
            CheckpointError::Corrupt(m) => write!(f, "corrupt checkpoint: {m}"),
            CheckpointError::Mismatch(m) => write!(f, "checkpoint mismatch: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Serialize `store` (with `config`) to `path`.
pub fn save(
    path: &Path,
    config: &LiPFormerConfig,
    store: &ParamStore,
) -> Result<(), CheckpointError> {
    let header = CheckpointHeader {
        version: 1,
        config: config.clone(),
        param_names: store.ids().map(|id| store.name(id).to_string()).collect(),
        frozen: store.ids().map(|id| store.is_frozen(id)).collect(),
    };
    let header_json = lip_serde::to_vec(&header);

    let mut file = std::io::BufWriter::new(std::fs::File::create(path)?);
    file.write_all(&MAGIC.to_le_bytes())?;
    file.write_all(&(header_json.len() as u32).to_le_bytes())?;
    file.write_all(&header_json)?;
    for id in store.ids() {
        let frame = store.value(id).to_bytes();
        file.write_all(&(frame.len() as u32).to_le_bytes())?;
        file.write_all(&frame)?;
    }
    file.flush()?;
    Ok(())
}

/// Read a checkpoint's header and parameter tensors.
pub fn load(path: &Path) -> Result<(CheckpointHeader, Vec<Tensor>), CheckpointError> {
    let raw = std::fs::read(path)?;
    load_bytes(&raw)
}

/// Decode a checkpoint already in memory. Takes `&[u8]`, so concurrent
/// readers can decode one shared buffer (the serving cache does; the
/// shared-cache concurrency tests race it).
pub fn load_bytes(raw: &[u8]) -> Result<(CheckpointHeader, Vec<Tensor>), CheckpointError> {
    let mut cursor = 0usize;
    let take = |cursor: &mut usize, n: usize| -> Result<&[u8], CheckpointError> {
        if *cursor + n > raw.len() {
            return Err(CheckpointError::Corrupt("truncated bundle".into()));
        }
        let slice = &raw[*cursor..*cursor + n];
        *cursor += n;
        Ok(slice)
    };
    let magic = u32::from_le_bytes(take(&mut cursor, 4)?.try_into().expect("4 bytes"));
    if magic != MAGIC {
        return Err(CheckpointError::Corrupt("bad magic".into()));
    }
    let header_len =
        u32::from_le_bytes(take(&mut cursor, 4)?.try_into().expect("4 bytes")) as usize;
    let header: CheckpointHeader = lip_serde::from_slice(take(&mut cursor, header_len)?)
        .map_err(|e| CheckpointError::Corrupt(format!("header decode: {e}")))?;
    if header.version != 1 {
        return Err(CheckpointError::Corrupt(format!(
            "unsupported version {}",
            header.version
        )));
    }
    let mut tensors = Vec::with_capacity(header.param_names.len());
    for i in 0..header.param_names.len() {
        let frame_len =
            u32::from_le_bytes(take(&mut cursor, 4)?.try_into().expect("4 bytes")) as usize;
        let frame = take(&mut cursor, frame_len)?;
        let t = Tensor::from_bytes(frame)
            .map_err(|e| CheckpointError::Corrupt(format!("tensor {i}: {e}")))?;
        tensors.push(t);
    }
    Ok((header, tensors))
}

/// Restore a checkpoint into a model's store, verifying name/shape agreement.
pub fn restore_into(
    header: &CheckpointHeader,
    tensors: &[Tensor],
    store: &mut ParamStore,
) -> Result<(), CheckpointError> {
    if header.param_names.len() != store.len() {
        return Err(CheckpointError::Mismatch(format!(
            "checkpoint has {} params, model has {}",
            header.param_names.len(),
            store.len()
        )));
    }
    for (i, id) in store.ids().enumerate().collect::<Vec<_>>() {
        if store.name(id) != header.param_names[i] {
            return Err(CheckpointError::Mismatch(format!(
                "param {i} name '{}' vs checkpoint '{}'",
                store.name(id),
                header.param_names[i]
            )));
        }
        if store.value(id).shape() != tensors[i].shape() {
            return Err(CheckpointError::Mismatch(format!(
                "param '{}' shape {:?} vs checkpoint {:?}",
                store.name(id),
                store.value(id).shape(),
                tensors[i].shape()
            )));
        }
    }
    for (i, id) in store.ids().enumerate().collect::<Vec<_>>() {
        store.set_value(id, tensors[i].clone());
        if header.frozen[i] {
            store.freeze(id);
        }
    }
    Ok(())
}

/// One-call deployment load: read a checkpoint, rebuild the model from the
/// header's configuration, and restore the saved parameters into it. `spec`
/// must be the covariate spec the saved model was constructed with (the
/// parameter-name check rejects a mismatched encoder layout).
pub fn load_model(
    path: &Path,
    spec: &lip_data::CovariateSpec,
) -> Result<crate::model::LiPFormer, CheckpointError> {
    use crate::forecaster::Forecaster;
    let (header, tensors) = load(path)?;
    let mut model = crate::model::LiPFormer::new(header.config.clone(), spec, 0);
    restore_into(&header, &tensors, model.store_mut())?;
    Ok(model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forecaster::{Forecaster, WeaklySupervised};
    use crate::model::LiPFormer;
    use lip_data::CovariateSpec;

    fn spec() -> CovariateSpec {
        CovariateSpec {
            numerical: 0,
            cardinalities: vec![],
            time_features: 4,
        }
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("lipformer_checkpoint_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let cfg = LiPFormerConfig::small(24, 8, 2);
        let mut model = LiPFormer::new(cfg.clone(), &spec(), 5);
        model.freeze_encoders();
        let path = tmp("roundtrip.ckpt");
        save(&path, &cfg, model.store()).unwrap();

        let (header, tensors) = load(&path).unwrap();
        assert_eq!(header.config.seq_len, 24);
        assert_eq!(header.param_names.len(), model.store().len());
        assert!(header.frozen.iter().any(|&f| f), "freeze flags preserved");

        let mut fresh = LiPFormer::new(cfg, &spec(), 999);
        restore_into(&header, &tensors, fresh.store_mut()).unwrap();
        for (a, b) in model.store().ids().zip(fresh.store().ids()) {
            assert_eq!(model.store().value(a), fresh.store().value(b));
            assert_eq!(model.store().is_frozen(a), fresh.store().is_frozen(b));
        }
        assert_eq!(model.num_parameters(), fresh.num_parameters());
    }

    #[test]
    fn load_model_rebuilds_an_equivalent_model() {
        let cfg = LiPFormerConfig::small(24, 8, 2);
        let model = LiPFormer::new(cfg.clone(), &spec(), 17);
        let path = tmp("load_model.ckpt");
        save(&path, &cfg, model.store()).unwrap();

        let loaded = load_model(&path, &spec()).unwrap();
        assert!(loaded.has_enriching());
        assert_eq!(loaded.num_parameters(), model.num_parameters());
        for (a, b) in model.store().ids().zip(loaded.store().ids()) {
            assert_eq!(model.store().value(a), loaded.store().value(b));
        }

        // a spec with a different encoder layout cannot host these params
        let wrong = CovariateSpec {
            numerical: 3,
            cardinalities: vec![4],
            time_features: 4,
        };
        assert!(matches!(
            load_model(&path, &wrong),
            Err(CheckpointError::Mismatch(_))
        ));
    }

    #[test]
    fn bad_magic_rejected() {
        let path = tmp("badmagic.ckpt");
        std::fs::write(&path, [0u8; 64]).unwrap();
        assert!(matches!(load(&path), Err(CheckpointError::Corrupt(_))));
    }

    #[test]
    fn truncation_rejected() {
        let cfg = LiPFormerConfig::small(24, 8, 1);
        let model = LiPFormer::without_enriching(cfg.clone(), 1);
        let path = tmp("trunc.ckpt");
        save(&path, &cfg, model.store()).unwrap();
        let mut raw = std::fs::read(&path).unwrap();
        raw.truncate(raw.len() / 2);
        let path2 = tmp("trunc2.ckpt");
        std::fs::write(&path2, raw).unwrap();
        assert!(load(&path2).is_err());
    }

    #[test]
    fn architecture_mismatch_rejected() {
        let cfg_small = LiPFormerConfig::small(24, 8, 1);
        let model = LiPFormer::without_enriching(cfg_small.clone(), 1);
        let path = tmp("mismatch.ckpt");
        save(&path, &cfg_small, model.store()).unwrap();
        let (header, tensors) = load(&path).unwrap();

        let mut cfg_big = LiPFormerConfig::small(24, 8, 1);
        cfg_big.hidden = 2 * cfg_small.hidden;
        let mut other = LiPFormer::without_enriching(cfg_big, 1);
        assert!(matches!(
            restore_into(&header, &tensors, other.store_mut()),
            Err(CheckpointError::Mismatch(_))
        ));
    }
}
