//! LiPFormer hyperparameters (paper §IV-A2) plus the ablation switches used
//! by Tables X and XI.

/// Full model configuration.
///
/// Paper defaults: `T = 720`, `pl = 48`, `hd = 512`, batch 256, dropout 0.5.
/// The reduced presets keep all structural ratios while shrinking widths so
/// the whole evaluation suite runs on CPU.
#[derive(Debug, Clone)]
pub struct LiPFormerConfig {
    /// Input (look-back) length `T`. Must be a multiple of `patch_len`.
    pub seq_len: usize,
    /// Forecast horizon `L`.
    pub pred_len: usize,
    /// Target channels `c`.
    pub channels: usize,
    /// Patch length `pl`.
    pub patch_len: usize,
    /// Hidden feature width `hd`.
    pub hidden: usize,
    /// Attention heads in the patch-wise attentions.
    pub heads: usize,
    /// Dropout probability on the hidden representation.
    pub dropout: f32,
    /// Smooth-L1 threshold β.
    pub smooth_l1_beta: f32,
    /// Hidden width of the dual encoders (weak-data enriching).
    pub encoder_hidden: usize,
    /// Embedding width per categorical covariate channel (the paper's
    /// Eq. 3 uses 1: textual labels concatenate into the `c_f` axis).
    pub categorical_embed: usize,
    /// Ablation: keep Cross-Patch attention (Table XI).
    pub use_cross_patch: bool,
    /// Ablation: keep Inter-Patch attention (Table XI).
    pub use_inter_patch: bool,
    /// Ablation: re-insert Layer Normalization (Table X).
    pub with_layer_norm: bool,
    /// Ablation: re-insert Feed-Forward Networks (Table X).
    pub with_ffn: bool,
}

lip_serde::json_struct!(LiPFormerConfig {
    seq_len,
    pred_len,
    channels,
    patch_len,
    hidden,
    heads,
    dropout,
    smooth_l1_beta,
    encoder_hidden,
    categorical_embed,
    use_cross_patch,
    use_inter_patch,
    with_layer_norm,
    with_ffn,
});

impl LiPFormerConfig {
    /// The paper's default configuration for a `(T=720, L, c)` task.
    pub fn paper(pred_len: usize, channels: usize) -> Self {
        LiPFormerConfig {
            seq_len: 720,
            pred_len,
            channels,
            patch_len: 48,
            hidden: 512,
            heads: 8,
            dropout: 0.5,
            smooth_l1_beta: 1.0,
            encoder_hidden: 64,
            categorical_embed: 1,
            use_cross_patch: true,
            use_inter_patch: true,
            with_layer_norm: false,
            with_ffn: false,
        }
    }

    /// Reduced configuration for CPU-scale experiments: same architecture,
    /// smaller widths. The patch length keeps the paper's token count
    /// (`n = T/pl ≈ 8–15`) rather than its absolute `pl = 48`, since the
    /// patch-wise attentions need enough tokens to act on.
    pub fn small(seq_len: usize, pred_len: usize, channels: usize) -> Self {
        let patch_len = patch_len_for_tokens(seq_len, 8);
        LiPFormerConfig {
            seq_len,
            pred_len,
            channels,
            patch_len,
            hidden: 64,
            heads: 4,
            dropout: 0.1,
            smooth_l1_beta: 1.0,
            encoder_hidden: 32,
            categorical_embed: 1,
            use_cross_patch: true,
            use_inter_patch: true,
            with_layer_norm: false,
            with_ffn: false,
        }
    }

    /// Number of input patches `n = T / pl`.
    pub fn num_patches(&self) -> usize {
        self.validate();
        self.seq_len / self.patch_len
    }

    /// Number of target patches `nt = ⌈L / pl⌉` (the head's token width).
    pub fn num_target_patches(&self) -> usize {
        self.pred_len.div_ceil(self.patch_len)
    }

    /// Panic on an inconsistent configuration.
    pub fn validate(&self) {
        assert!(self.seq_len > 0 && self.pred_len > 0 && self.channels > 0);
        assert!(
            self.patch_len > 0 && self.seq_len.is_multiple_of(self.patch_len),
            "patch_len {} must evenly divide seq_len {} (paper §IV-A2)",
            self.patch_len,
            self.seq_len
        );
        assert!(self.hidden.is_multiple_of(self.heads), "hidden must divide by heads");
        assert!((0.0..1.0).contains(&self.dropout));
        assert!(self.smooth_l1_beta > 0.0);
    }

    /// Ablation variant: re-add Layer Normalization (Table X "+LN").
    pub fn with_ln(mut self) -> Self {
        self.with_layer_norm = true;
        self
    }

    /// Ablation variant: re-add FFNs (Table X "+FFNs").
    pub fn with_ffns(mut self) -> Self {
        self.with_ffn = true;
        self
    }

    /// Ablation variant: drop Cross-Patch attention (Table XI).
    pub fn without_cross_patch(mut self) -> Self {
        self.use_cross_patch = false;
        self
    }

    /// Ablation variant: drop Inter-Patch attention (Table XI).
    pub fn without_inter_patch(mut self) -> Self {
        self.use_inter_patch = false;
        self
    }
}

/// The largest of the paper's patch lengths {6, 12, 24, 48} dividing
/// `seq_len`, falling back to any divisor.
pub fn preferred_patch_len(seq_len: usize) -> usize {
    for pl in [48, 24, 12, 6] {
        if seq_len.is_multiple_of(pl) {
            return pl;
        }
    }
    (1..=seq_len).rev().find(|pl| seq_len.is_multiple_of(*pl)).unwrap_or(1)
}

/// The largest of the paper's patch lengths {6, 12, 24, 48} that divides
/// `seq_len` *and* yields at least `min_tokens` patches; falls back to
/// [`preferred_patch_len`] when none does.
pub fn patch_len_for_tokens(seq_len: usize, min_tokens: usize) -> usize {
    for pl in [48, 24, 12, 6] {
        if seq_len.is_multiple_of(pl) && seq_len / pl >= min_tokens {
            return pl;
        }
    }
    preferred_patch_len(seq_len)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = LiPFormerConfig::paper(96, 7);
        assert_eq!(c.seq_len, 720);
        assert_eq!(c.patch_len, 48);
        assert_eq!(c.hidden, 512);
        assert_eq!(c.num_patches(), 15);
        assert_eq!(c.num_target_patches(), 2);
        assert!(!c.with_layer_norm && !c.with_ffn);
    }

    #[test]
    fn small_patch_division() {
        // reduced configs keep the paper's *token count* (n ≥ 8) rather than
        // its absolute pl = 48
        let c = LiPFormerConfig::small(96, 24, 3);
        assert_eq!(c.patch_len, 12);
        assert_eq!(c.num_patches(), 8);
        let c2 = LiPFormerConfig::small(720, 96, 3);
        assert_eq!(c2.patch_len, 48);
        assert_eq!(c2.num_patches(), 15);
    }

    #[test]
    fn ablation_builders() {
        let c = LiPFormerConfig::small(96, 24, 1)
            .with_ln()
            .with_ffns()
            .without_cross_patch()
            .without_inter_patch();
        assert!(c.with_layer_norm && c.with_ffn);
        assert!(!c.use_cross_patch && !c.use_inter_patch);
    }

    #[test]
    #[should_panic(expected = "evenly divide")]
    fn bad_patch_len_rejected() {
        let mut c = LiPFormerConfig::small(96, 24, 1);
        c.patch_len = 40;
        c.validate();
    }

    #[test]
    fn target_patches_round_up() {
        let mut c = LiPFormerConfig::small(96, 24, 1);
        c.patch_len = 48;
        assert_eq!(c.num_target_patches(), 1);
        c.pred_len = 96;
        assert_eq!(c.num_target_patches(), 2);
        c.pred_len = 97;
        assert_eq!(c.num_target_patches(), 3);
    }

    #[test]
    fn preferred_patch_prefers_48() {
        assert_eq!(preferred_patch_len(720), 48);
        assert_eq!(preferred_patch_len(96), 48);
        assert_eq!(preferred_patch_len(36), 12);
        assert_eq!(preferred_patch_len(7), 7);
    }
}
