//! LiPFormer hyperparameters (paper §IV-A2) plus the ablation switches used
//! by Tables X and XI.

/// Full model configuration.
///
/// Paper defaults: `T = 720`, `pl = 48`, `hd = 512`, batch 256, dropout 0.5.
/// The reduced presets keep all structural ratios while shrinking widths so
/// the whole evaluation suite runs on CPU.
#[derive(Debug, Clone)]
pub struct LiPFormerConfig {
    /// Input (look-back) length `T`. Must be a multiple of `patch_len`.
    pub seq_len: usize,
    /// Forecast horizon `L`.
    pub pred_len: usize,
    /// Target channels `c`.
    pub channels: usize,
    /// Patch length `pl`.
    pub patch_len: usize,
    /// Hidden feature width `hd`.
    pub hidden: usize,
    /// Attention heads in the patch-wise attentions.
    pub heads: usize,
    /// Dropout probability on the hidden representation.
    pub dropout: f32,
    /// Smooth-L1 threshold β.
    pub smooth_l1_beta: f32,
    /// Hidden width of the dual encoders (weak-data enriching).
    pub encoder_hidden: usize,
    /// Embedding width per categorical covariate channel (the paper's
    /// Eq. 3 uses 1: textual labels concatenate into the `c_f` axis).
    pub categorical_embed: usize,
    /// Ablation: keep Cross-Patch attention (Table XI).
    pub use_cross_patch: bool,
    /// Ablation: keep Inter-Patch attention (Table XI).
    pub use_inter_patch: bool,
    /// Ablation: re-insert Layer Normalization (Table X).
    pub with_layer_norm: bool,
    /// Ablation: re-insert Feed-Forward Networks (Table X).
    pub with_ffn: bool,
    /// Stage composition (representation / extraction / projection).
    /// Defaults to the paper's canonical pipeline.
    pub stages: StageSpec,
}

/// Which representation stage normalizes and patches the input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReprKind {
    /// Last-value instance normalization (the paper's §III-C1 anchor).
    LastValue,
    /// Mean/std statistical normalization (RevIN without affine).
    MeanStd,
}

/// Which information-extraction stage maps patch tokens to features.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExtractKind {
    /// The paper's Cross-Patch + Inter-Patch attention backbone.
    LipAttention,
    /// A PatchTST-style Transformer encoder (PE + LN + FFN stack).
    PatchTst,
}

/// Which projection stage maps features to the de-normalized forecast.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProjKind {
    /// The paper's two single-layer MLP heads (`n → nt`, `hd → pl`).
    PatchHead,
    /// PatchTST's flatten head (`[n·hd] → L` in one linear layer).
    FlattenLinear,
}

lip_serde::json_unit_enum!(ReprKind { LastValue, MeanStd });
lip_serde::json_unit_enum!(ExtractKind { LipAttention, PatchTst });
lip_serde::json_unit_enum!(ProjKind { PatchHead, FlattenLinear });

/// A stage composition: one representation, one extraction, one projection.
/// The default is the canonical LiPFormer pipeline, byte-identical to the
/// pre-refactor monolith.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageSpec {
    /// Normalization + patching choice.
    pub representation: ReprKind,
    /// Token-to-feature backbone choice.
    pub extraction: ExtractKind,
    /// Feature-to-forecast head choice.
    pub projection: ProjKind,
    /// Encoder depth for the `PatchTst` extraction (ignored otherwise).
    pub depth: usize,
}

lip_serde::json_struct!(StageSpec {
    representation,
    extraction,
    projection,
    depth,
});

impl Default for StageSpec {
    fn default() -> Self {
        StageSpec {
            representation: ReprKind::LastValue,
            extraction: ExtractKind::LipAttention,
            projection: ProjKind::PatchHead,
            depth: 2,
        }
    }
}

impl StageSpec {
    /// Whether this is the canonical (pre-refactor monolith) composition.
    pub fn is_canonical(&self) -> bool {
        self.representation == ReprKind::LastValue
            && self.extraction == ExtractKind::LipAttention
            && self.projection == ProjKind::PatchHead
    }
}

// Hand-written (rather than `json_struct!`) so configs written before the
// stage decomposition — v1 checkpoints, committed bench baselines — still
// parse: a missing `stages` field means the canonical composition.
impl lip_serde::ToJson for LiPFormerConfig {
    fn to_json(&self) -> lip_serde::Json {
        lip_serde::Json::Object(vec![
            ("seq_len".into(), self.seq_len.to_json()),
            ("pred_len".into(), self.pred_len.to_json()),
            ("channels".into(), self.channels.to_json()),
            ("patch_len".into(), self.patch_len.to_json()),
            ("hidden".into(), self.hidden.to_json()),
            ("heads".into(), self.heads.to_json()),
            ("dropout".into(), self.dropout.to_json()),
            ("smooth_l1_beta".into(), self.smooth_l1_beta.to_json()),
            ("encoder_hidden".into(), self.encoder_hidden.to_json()),
            ("categorical_embed".into(), self.categorical_embed.to_json()),
            ("use_cross_patch".into(), self.use_cross_patch.to_json()),
            ("use_inter_patch".into(), self.use_inter_patch.to_json()),
            ("with_layer_norm".into(), self.with_layer_norm.to_json()),
            ("with_ffn".into(), self.with_ffn.to_json()),
            ("stages".into(), self.stages.to_json()),
        ])
    }
}

impl lip_serde::FromJson for LiPFormerConfig {
    fn from_json(v: &lip_serde::Json) -> Result<Self, lip_serde::JsonError> {
        let stages = match v.get("stages") {
            Some(j) if !matches!(j, lip_serde::Json::Null) => {
                lip_serde::FromJson::from_json(j)?
            }
            _ => StageSpec::default(),
        };
        Ok(LiPFormerConfig {
            seq_len: v.field("seq_len")?,
            pred_len: v.field("pred_len")?,
            channels: v.field("channels")?,
            patch_len: v.field("patch_len")?,
            hidden: v.field("hidden")?,
            heads: v.field("heads")?,
            dropout: v.field("dropout")?,
            smooth_l1_beta: v.field("smooth_l1_beta")?,
            encoder_hidden: v.field("encoder_hidden")?,
            categorical_embed: v.field("categorical_embed")?,
            use_cross_patch: v.field("use_cross_patch")?,
            use_inter_patch: v.field("use_inter_patch")?,
            with_layer_norm: v.field("with_layer_norm")?,
            with_ffn: v.field("with_ffn")?,
            stages,
        })
    }
}

impl LiPFormerConfig {
    /// The paper's default configuration for a `(T=720, L, c)` task.
    pub fn paper(pred_len: usize, channels: usize) -> Self {
        LiPFormerConfig {
            seq_len: 720,
            pred_len,
            channels,
            patch_len: 48,
            hidden: 512,
            heads: 8,
            dropout: 0.5,
            smooth_l1_beta: 1.0,
            encoder_hidden: 64,
            categorical_embed: 1,
            use_cross_patch: true,
            use_inter_patch: true,
            with_layer_norm: false,
            with_ffn: false,
            stages: StageSpec::default(),
        }
    }

    /// Reduced configuration for CPU-scale experiments: same architecture,
    /// smaller widths. The patch length keeps the paper's token count
    /// (`n = T/pl ≈ 8–15`) rather than its absolute `pl = 48`, since the
    /// patch-wise attentions need enough tokens to act on.
    pub fn small(seq_len: usize, pred_len: usize, channels: usize) -> Self {
        let patch_len = patch_len_for_tokens(seq_len, 8);
        LiPFormerConfig {
            seq_len,
            pred_len,
            channels,
            patch_len,
            hidden: 64,
            heads: 4,
            dropout: 0.1,
            smooth_l1_beta: 1.0,
            encoder_hidden: 32,
            categorical_embed: 1,
            use_cross_patch: true,
            use_inter_patch: true,
            with_layer_norm: false,
            with_ffn: false,
            stages: StageSpec::default(),
        }
    }

    /// Number of input patches `n = T / pl`.
    pub fn num_patches(&self) -> usize {
        self.validate();
        self.seq_len / self.patch_len
    }

    /// Number of target patches `nt = ⌈L / pl⌉` (the head's token width).
    pub fn num_target_patches(&self) -> usize {
        self.pred_len.div_ceil(self.patch_len)
    }

    /// Panic on an inconsistent configuration.
    pub fn validate(&self) {
        assert!(self.seq_len > 0 && self.pred_len > 0 && self.channels > 0);
        assert!(
            self.patch_len > 0 && self.seq_len.is_multiple_of(self.patch_len),
            "patch_len {} must evenly divide seq_len {} (paper §IV-A2)",
            self.patch_len,
            self.seq_len
        );
        assert!(self.hidden.is_multiple_of(self.heads), "hidden must divide by heads");
        assert!((0.0..1.0).contains(&self.dropout));
        assert!(self.smooth_l1_beta > 0.0);
        assert!(
            self.stages.depth >= 1,
            "stage composition needs encoder depth >= 1"
        );
    }

    /// Builder: swap the stage composition.
    pub fn with_stages(mut self, stages: StageSpec) -> Self {
        self.stages = stages;
        self
    }

    /// Ablation variant: re-add Layer Normalization (Table X "+LN").
    pub fn with_ln(mut self) -> Self {
        self.with_layer_norm = true;
        self
    }

    /// Ablation variant: re-add FFNs (Table X "+FFNs").
    pub fn with_ffns(mut self) -> Self {
        self.with_ffn = true;
        self
    }

    /// Ablation variant: drop Cross-Patch attention (Table XI).
    pub fn without_cross_patch(mut self) -> Self {
        self.use_cross_patch = false;
        self
    }

    /// Ablation variant: drop Inter-Patch attention (Table XI).
    pub fn without_inter_patch(mut self) -> Self {
        self.use_inter_patch = false;
        self
    }
}

/// The largest of the paper's patch lengths {6, 12, 24, 48} dividing
/// `seq_len`, falling back to any divisor.
pub fn preferred_patch_len(seq_len: usize) -> usize {
    for pl in [48, 24, 12, 6] {
        if seq_len.is_multiple_of(pl) {
            return pl;
        }
    }
    (1..=seq_len).rev().find(|pl| seq_len.is_multiple_of(*pl)).unwrap_or(1)
}

/// The largest of the paper's patch lengths {6, 12, 24, 48} that divides
/// `seq_len` *and* yields at least `min_tokens` patches; falls back to
/// [`preferred_patch_len`] when none does.
pub fn patch_len_for_tokens(seq_len: usize, min_tokens: usize) -> usize {
    for pl in [48, 24, 12, 6] {
        if seq_len.is_multiple_of(pl) && seq_len / pl >= min_tokens {
            return pl;
        }
    }
    preferred_patch_len(seq_len)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = LiPFormerConfig::paper(96, 7);
        assert_eq!(c.seq_len, 720);
        assert_eq!(c.patch_len, 48);
        assert_eq!(c.hidden, 512);
        assert_eq!(c.num_patches(), 15);
        assert_eq!(c.num_target_patches(), 2);
        assert!(!c.with_layer_norm && !c.with_ffn);
    }

    #[test]
    fn small_patch_division() {
        // reduced configs keep the paper's *token count* (n ≥ 8) rather than
        // its absolute pl = 48
        let c = LiPFormerConfig::small(96, 24, 3);
        assert_eq!(c.patch_len, 12);
        assert_eq!(c.num_patches(), 8);
        let c2 = LiPFormerConfig::small(720, 96, 3);
        assert_eq!(c2.patch_len, 48);
        assert_eq!(c2.num_patches(), 15);
    }

    #[test]
    fn ablation_builders() {
        let c = LiPFormerConfig::small(96, 24, 1)
            .with_ln()
            .with_ffns()
            .without_cross_patch()
            .without_inter_patch();
        assert!(c.with_layer_norm && c.with_ffn);
        assert!(!c.use_cross_patch && !c.use_inter_patch);
    }

    #[test]
    #[should_panic(expected = "evenly divide")]
    fn bad_patch_len_rejected() {
        let mut c = LiPFormerConfig::small(96, 24, 1);
        c.patch_len = 40;
        c.validate();
    }

    #[test]
    fn target_patches_round_up() {
        let mut c = LiPFormerConfig::small(96, 24, 1);
        c.patch_len = 48;
        assert_eq!(c.num_target_patches(), 1);
        c.pred_len = 96;
        assert_eq!(c.num_target_patches(), 2);
        c.pred_len = 97;
        assert_eq!(c.num_target_patches(), 3);
    }

    #[test]
    fn config_json_roundtrips_with_stages() {
        let mut c = LiPFormerConfig::small(96, 24, 3);
        c.stages = StageSpec {
            representation: ReprKind::MeanStd,
            extraction: ExtractKind::PatchTst,
            projection: ProjKind::FlattenLinear,
            depth: 3,
        };
        let json = lip_serde::to_string(&c);
        let back: LiPFormerConfig = lip_serde::from_str(&json).unwrap();
        assert_eq!(back.stages, c.stages);
        assert_eq!(back.seq_len, c.seq_len);
    }

    #[test]
    fn pre_stage_config_json_defaults_to_canonical() {
        // Configs serialized before the stage decomposition (v1 checkpoints,
        // committed bench baselines) have no `stages` field.
        let c = LiPFormerConfig::small(96, 24, 3);
        let json = lip_serde::to_string(&c);
        let legacy = json.replace(",\"stages\":", ",\"_ignored\":");
        assert!(!legacy.contains("\"stages\""), "test setup failed");
        let back: LiPFormerConfig = lip_serde::from_str(&legacy).unwrap();
        assert!(back.stages.is_canonical());
        assert_eq!(back.stages, StageSpec::default());
    }

    #[test]
    fn preferred_patch_prefers_48() {
        assert_eq!(preferred_patch_len(720), 48);
        assert_eq!(preferred_patch_len(96), 48);
        assert_eq!(preferred_patch_len(36), 12);
        assert_eq!(preferred_patch_len(7), 7);
    }
}
