//! Instance normalization (paper §III-C1): subtract each channel's **last
//! observed value** from the input window and re-add it to the prediction —
//! the lightweight distribution-shift treatment LiPFormer adopts from
//! DLinear instead of Layer Normalization.
//!
//! The `[b, 1, c]` anchor is a zero-copy `slice_axis` view of the input
//! window: it shares the window's storage and broadcasts straight into the
//! subtraction, so normalization allocates nothing beyond the centered
//! output.

use lip_autograd::{Graph, Var};

/// Last-value instance normalization over `[b, T, c]` windows.
#[derive(Debug, Clone, Copy, Default)]
pub struct InstanceNorm;

impl InstanceNorm {
    /// Normalize: returns `(x − x_T, x_T)` where `x_T` is the `[b, 1, c]`
    /// last-step slice that must be re-added after prediction.
    pub fn normalize(self, g: &mut Graph, x: Var) -> (Var, Var) {
        let shape = g.shape(x).to_vec();
        assert_eq!(shape.len(), 3, "instance norm expects [b, T, c]");
        let t = shape[1];
        let last = g.slice_axis(x, 1, t - 1, t); // [b, 1, c]
        let centered = g.sub(x, last);
        (centered, last)
    }

    /// Denormalize a prediction `[b, L, c]` by re-adding the anchors.
    pub fn denormalize(self, g: &mut Graph, y: Var, last: Var) -> Var {
        g.add(y, last)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lip_autograd::ParamStore;
    use lip_tensor::Tensor;

    #[test]
    fn last_step_becomes_zero() {
        let store = ParamStore::new();
        let mut g = Graph::new(&store);
        let x = g.constant(Tensor::from_vec(
            vec![1.0, 10.0, 2.0, 20.0, 3.0, 30.0],
            &[1, 3, 2],
        ));
        let (normed, last) = InstanceNorm.normalize(&mut g, x);
        let n = g.value(normed);
        // last row of the normalized window is zero
        assert_eq!(n.slice_axis(1, 2, 3).to_vec(), vec![0.0, 0.0]);
        assert_eq!(g.value(last).to_vec(), vec![3.0, 30.0]);
    }

    #[test]
    fn roundtrip_restores_scale() {
        let store = ParamStore::new();
        let mut g = Graph::new(&store);
        let x = g.constant(Tensor::from_vec(vec![5.0, 7.0, 9.0], &[1, 3, 1]));
        let (_, last) = InstanceNorm.normalize(&mut g, x);
        // a "prediction" of zeros denormalizes to the anchor value
        let pred = g.constant(Tensor::zeros(&[1, 2, 1]));
        let out = InstanceNorm.denormalize(&mut g, pred, last);
        assert_eq!(g.value(out).to_vec(), vec![9.0, 9.0]);
    }

    #[test]
    fn shift_invariance() {
        // Adding a constant offset to the window must not change the
        // normalized representation — the property that defeats
        // distribution shift.
        let store = ParamStore::new();
        let run = |offset: f32| {
            let mut g = Graph::new(&store);
            let x = g.constant(
                Tensor::from_vec(vec![1.0, 2.0, 4.0, 8.0], &[1, 4, 1]).add_scalar(offset),
            );
            let (n, _) = InstanceNorm.normalize(&mut g, x);
            g.value(n).clone()
        };
        assert_eq!(run(0.0), run(1000.0));
    }

    #[test]
    fn gradient_flows_through() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::ones(&[1, 3, 1]));
        let mut g = Graph::new(&store);
        let wv = g.param(w);
        let (n, last) = InstanceNorm.normalize(&mut g, wv);
        let d = InstanceNorm.denormalize(&mut g, n, last);
        let loss = g.sum(d);
        let grads = g.backward(loss);
        assert!(grads.for_param(w).is_some());
    }
}
