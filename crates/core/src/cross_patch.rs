//! **Cross-Patch attention** (paper §III-C1, Fig. 2 and Eq. 1).
//!
//! From the patched window `[b·c, n, pl]`, a *global trend sequence* is built
//! for each intra-patch position `i < pl` by collecting the i-th data point
//! of every patch in chronological order — a simple transpose to
//! `[b·c, pl, n]`, recorded as a zero-copy permute view of the patched
//! window. Attention across these `pl` lagged trend sequences
//! captures global order/trend dependencies (substituting Positional
//! Encoding), after which a residual connection and a single-layer MLP mix
//! trend features into the `hd`-wide patch representation:
//!
//! `x = MLP(Attn(X) + X)`.

use lip_autograd::{Graph, ParamStore, Var};
use lip_nn::{Linear, MultiHeadSelfAttention};
use lip_rng::Rng;

/// The trend-mixing core: attention in LiPFormer proper, or a plain linear
/// layer for the Table XI ablation ("use a linear layer instead").
#[derive(Debug, Clone)]
enum TrendCore {
    Attention(MultiHeadSelfAttention),
    LinearOnly(Linear),
}

/// Cross-patch attention block producing the `[b·c, n, hd]` representation.
#[derive(Debug, Clone)]
pub struct CrossPatch {
    core: TrendCore,
    mix: Linear,
    num_patches: usize,
    patch_len: usize,
    hidden: usize,
}

impl CrossPatch {
    /// Build for `n = num_patches` trend length, `pl = patch_len` trend
    /// count and output width `hidden`. `use_attention = false` selects the
    /// ablation variant.
    // The signature mirrors the paper's hyperparameter list one-for-one; a
    // params struct would just rename the same knobs.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        num_patches: usize,
        patch_len: usize,
        hidden: usize,
        preferred_heads: usize,
        use_attention: bool,
        rng: &mut impl Rng,
    ) -> Self {
        let core = if use_attention {
            let heads = compatible_heads(num_patches, preferred_heads);
            TrendCore::Attention(MultiHeadSelfAttention::new(
                store,
                &format!("{name}.trend_attn"),
                num_patches,
                heads,
                rng,
            ))
        } else {
            TrendCore::LinearOnly(Linear::new(
                store,
                &format!("{name}.trend_linear"),
                num_patches,
                num_patches,
                true,
                rng,
            ))
        };
        let mix = Linear::new(store, &format!("{name}.mix"), patch_len, hidden, true, rng);
        CrossPatch {
            core,
            mix,
            num_patches,
            patch_len,
            hidden,
        }
    }

    /// `x: [b·c, n, pl] → [b·c, n, hd]` (Eq. 1).
    pub fn forward(&self, g: &mut Graph, x: Var) -> Var {
        let shape = g.shape(x).to_vec();
        assert_eq!(shape.len(), 3, "cross-patch expects [b·c, n, pl]");
        assert_eq!(shape[1], self.num_patches, "patch count mismatch");
        assert_eq!(shape[2], self.patch_len, "patch length mismatch");

        // build trend sequences: [b·c, pl, n]
        let trends = g.transpose(x, 1, 2);
        let mixed = match &self.core {
            TrendCore::Attention(attn) => attn.forward(g, trends),
            TrendCore::LinearOnly(lin) => lin.forward(g, trends),
        };
        let residual = g.add(mixed, trends);
        // back to patch-major and lift pl → hd
        let patches = g.transpose(residual, 1, 2);
        self.mix.forward(g, patches)
    }

    /// Output width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// True when running the attention (non-ablated) variant.
    pub fn uses_attention(&self) -> bool {
        matches!(self.core, TrendCore::Attention(_))
    }
}

/// Largest head count ≤ `preferred` dividing `dim` (trend length `n` is often
/// small and odd, e.g. 15 at paper scale, so cross-patch may fall back to a
/// single head). Public so the static analyzer can mirror the model's head
/// selection when building its symbolic plan.
pub fn compatible_heads(dim: usize, preferred: usize) -> usize {
    (1..=preferred.max(1))
        .rev()
        .find(|h| dim.is_multiple_of(*h))
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lip_autograd::gradcheck::check_gradients;
    use lip_tensor::Tensor;
    use lip_rng::rngs::StdRng;
    use lip_rng::SeedableRng;

    #[test]
    fn output_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let cp = CrossPatch::new(&mut store, "cp", 4, 6, 16, 4, true, &mut rng);
        let mut g = Graph::new(&store);
        let x = g.constant(Tensor::randn(&[3, 4, 6], &mut rng));
        let y = cp.forward(&mut g, x);
        assert_eq!(g.shape(y), &[3, 4, 16]);
        assert!(cp.uses_attention());
    }

    #[test]
    fn ablation_linear_variant() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let cp = CrossPatch::new(&mut store, "cp", 4, 6, 16, 4, false, &mut rng);
        assert!(!cp.uses_attention());
        let mut g = Graph::new(&store);
        let x = g.constant(Tensor::randn(&[2, 4, 6], &mut rng));
        let y = cp.forward(&mut g, x);
        assert_eq!(g.shape(y), &[2, 4, 16]);
    }

    #[test]
    fn head_fallback_for_odd_patch_counts() {
        assert_eq!(compatible_heads(15, 8), 5);
        assert_eq!(compatible_heads(7, 4), 1);
        assert_eq!(compatible_heads(16, 8), 8);
        assert_eq!(compatible_heads(1, 8), 1);
    }

    #[test]
    fn detects_global_trend_position() {
        // A point injected at patch j, position i must influence outputs of
        // *other* patches through the trend attention — locality breaking.
        let mut rng = StdRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let cp = CrossPatch::new(&mut store, "cp", 4, 3, 8, 2, true, &mut rng);
        let base = Tensor::zeros(&[1, 4, 3]);
        let mut spiked = base.clone();
        spiked.data_mut()[1] = 5.0; // patch 0, position 1
        let run = |input: Tensor| {
            let mut g = Graph::new(&store);
            let x = g.constant(input);
            let y = cp.forward(&mut g, x);
            g.value(y).clone()
        };
        let y0 = run(base);
        let y1 = run(spiked);
        // patch 3's representation must change even though the spike is in patch 0
        let d = y1
            .slice_axis(1, 3, 4)
            .sub(&y0.slice_axis(1, 3, 4))
            .abs()
            .max_value();
        assert!(d > 1e-6, "cross-patch failed to propagate global info: {d}");
    }

    #[test]
    fn gradients_check() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut store = ParamStore::new();
        let cp = CrossPatch::new(&mut store, "cp", 3, 2, 4, 1, true, &mut rng);
        let x = Tensor::randn(&[2, 3, 2], &mut rng).mul_scalar(0.5);
        check_gradients(
            &mut store,
            &move |g| {
                let xv = g.constant(x.clone());
                let y = cp.forward(g, xv);
                let sq = g.square(y);
                g.mean(sq)
            },
            1e-2,
            3e-2,
        )
        .unwrap();
    }
}
