//! The **Covariate Encoder** (paper §III-C2, Fig. 5, Eq. 3–6): a simplified
//! Transformer that encodes future weak labels — textual (categorical)
//! channels embedded then concatenated with numerical channels, lifted to
//! `hd`, passed through one residual self-attention, flattened, and projected
//! to an `L`-dimensional representation vector.
//!
//! The same module serves both policies of the paper:
//! * **explicit** weak labels (Electri-Price/Cycle forecasts + categories),
//! * **implicit** temporal features (hour/day/month encodings) when no
//!   explicit covariates exist.

use lip_autograd::{Graph, ParamStore, Var};
use lip_nn::{Embedding, Linear, MultiHeadSelfAttention};
use lip_rng::Rng;

use crate::cross_patch::compatible_heads;

/// Shared residual-attention trunk of the dual encoders (Eq. 5–6):
/// `[b, L, hd] → Flat(Attn(F) + F) → [b, L·hd] → MLP → [b, L]`.
#[derive(Debug, Clone)]
pub struct EncoderTrunk {
    attn: MultiHeadSelfAttention,
    out: Linear,
    horizon: usize,
    hidden: usize,
}

impl EncoderTrunk {
    /// Build a trunk for horizon `L` and hidden width `hd`.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        horizon: usize,
        hidden: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let heads = compatible_heads(hidden, 4);
        EncoderTrunk {
            attn: MultiHeadSelfAttention::new(store, &format!("{name}.attn"), hidden, heads, rng),
            out: Linear::new(
                store,
                &format!("{name}.out"),
                horizon * hidden,
                horizon,
                true,
                rng,
            ),
            horizon,
            hidden,
        }
    }

    /// `f: [b, L, hd] → [b, L]`.
    pub fn forward(&self, g: &mut Graph, f: Var) -> Var {
        let shape = g.shape(f).to_vec();
        assert_eq!(shape.len(), 3, "trunk expects [b, L, hd]");
        assert_eq!(shape[1], self.horizon, "horizon mismatch");
        assert_eq!(shape[2], self.hidden, "hidden mismatch");
        let b = shape[0];
        let attended = self.attn.forward(g, f);
        let residual = g.add(attended, f);
        let flat = g.reshape(residual, &[b, self.horizon * self.hidden]);
        self.out.forward(g, flat)
    }
}

/// Weak-label inputs for one batch, already shaped for the encoder.
pub struct CovariateInput<'a> {
    /// Numerical covariates `[b, L, c_n]`.
    pub numerical: &'a lip_tensor::Tensor,
    /// One flat `[b·L]` code vector per categorical channel.
    pub categorical: &'a [Vec<usize>],
}

/// The Covariate Encoder proper.
#[derive(Debug, Clone)]
pub struct CovariateEncoder {
    embeddings: Vec<Embedding>,
    lift: Linear,
    trunk: EncoderTrunk,
    numerical_width: usize,
    embed_dim: usize,
    horizon: usize,
}

impl CovariateEncoder {
    /// Build for `numerical_width` numerical channels and one embedding per
    /// categorical cardinality. `embed_dim = 1` matches the paper's
    /// `c_f = c_n + c_t` concatenation (Eq. 3).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        numerical_width: usize,
        cardinalities: &[usize],
        embed_dim: usize,
        horizon: usize,
        hidden: usize,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(
            numerical_width + cardinalities.len() > 0,
            "covariate encoder needs at least one input channel"
        );
        let embeddings = cardinalities
            .iter()
            .enumerate()
            .map(|(i, &card)| {
                Embedding::new(store, &format!("{name}.embed{i}"), card, embed_dim, rng)
            })
            .collect::<Vec<_>>();
        let cf = numerical_width + embeddings.len() * embed_dim;
        CovariateEncoder {
            lift: Linear::new(store, &format!("{name}.lift"), cf, hidden, true, rng),
            trunk: EncoderTrunk::new(store, &format!("{name}.trunk"), horizon, hidden, rng),
            embeddings,
            numerical_width,
            embed_dim,
            horizon,
        }
    }

    /// Encode a batch of future weak labels to `[b, L]` representation
    /// vectors (Eq. 3–6).
    pub fn forward(&self, g: &mut Graph, input: &CovariateInput<'_>) -> Var {
        let shape = input.numerical.shape().to_vec();
        assert_eq!(shape.len(), 3, "numerical covariates must be [b, L, c_n]");
        let (b, l) = (shape[0], shape[1]);
        assert_eq!(l, self.horizon, "covariate horizon mismatch");
        assert_eq!(shape[2], self.numerical_width, "numerical width mismatch");
        assert_eq!(
            input.categorical.len(),
            self.embeddings.len(),
            "categorical channel count mismatch"
        );

        // Eq. 3: Concat(Embed(textual), numerical)
        let mut parts: Vec<Var> = Vec::with_capacity(1 + self.embeddings.len());
        if self.numerical_width > 0 {
            parts.push(g.constant(input.numerical.clone()));
        }
        for (emb, codes) in self.embeddings.iter().zip(input.categorical) {
            assert_eq!(codes.len(), b * l, "flat categorical length must be b·L");
            let e = emb.forward(g, codes); // [b·L, e]
            parts.push(g.reshape(e, &[b, l, self.embed_dim]));
        }
        let cat = if parts.len() == 1 {
            parts[0]
        } else {
            g.concat(&parts, 2)
        };

        // Eq. 4–6
        let lifted = self.lift.forward(g, cat);
        self.trunk.forward(g, lifted)
    }

    /// Horizon `L` of the representation vector.
    pub fn horizon(&self) -> usize {
        self.horizon
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lip_autograd::gradcheck::check_gradients;
    use lip_tensor::Tensor;
    use lip_rng::rngs::StdRng;
    use lip_rng::SeedableRng;

    fn encoder(store: &mut ParamStore, rng: &mut StdRng) -> CovariateEncoder {
        CovariateEncoder::new(store, "cov", 3, &[4, 2], 1, 6, 8, rng)
    }

    #[test]
    fn output_is_batch_by_horizon() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let enc = encoder(&mut store, &mut rng);
        let mut g = Graph::new(&store);
        let numerical = Tensor::randn(&[2, 6, 3], &mut rng);
        let categorical = vec![vec![0usize; 12], vec![1usize; 12]];
        let out = enc.forward(
            &mut g,
            &CovariateInput {
                numerical: &numerical,
                categorical: &categorical,
            },
        );
        assert_eq!(g.shape(out), &[2, 6]);
    }

    #[test]
    fn numerical_only_mode() {
        // the implicit-feature policy: time encodings, no categoricals
        let mut rng = StdRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let enc = CovariateEncoder::new(&mut store, "cov", 4, &[], 1, 5, 8, &mut rng);
        let mut g = Graph::new(&store);
        let numerical = Tensor::randn(&[3, 5, 4], &mut rng);
        let out = enc.forward(
            &mut g,
            &CovariateInput {
                numerical: &numerical,
                categorical: &[],
            },
        );
        assert_eq!(g.shape(out), &[3, 5]);
    }

    #[test]
    fn categorical_only_mode() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let enc = CovariateEncoder::new(&mut store, "cov", 0, &[3], 2, 4, 8, &mut rng);
        let mut g = Graph::new(&store);
        let numerical = Tensor::zeros(&[2, 4, 0]);
        let out = enc.forward(
            &mut g,
            &CovariateInput {
                numerical: &numerical,
                categorical: &[vec![0, 1, 2, 0, 1, 2, 0, 1]],
            },
        );
        assert_eq!(g.shape(out), &[2, 4]);
    }

    #[test]
    fn categorical_values_change_output() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut store = ParamStore::new();
        let enc = encoder(&mut store, &mut rng);
        let numerical = Tensor::zeros(&[1, 6, 3]);
        let run = |code: usize| {
            let mut g = Graph::new(&store);
            let categorical = vec![vec![code; 6], vec![0usize; 6]];
            let out = enc.forward(
                &mut g,
                &CovariateInput {
                    numerical: &numerical,
                    categorical: &categorical,
                },
            );
            g.value(out).clone()
        };
        let d = run(0).sub(&run(3)).abs().max_value();
        assert!(d > 1e-6, "weak label change must alter the encoding: {d}");
    }

    #[test]
    fn gradients_check() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut store = ParamStore::new();
        let enc = CovariateEncoder::new(&mut store, "cov", 2, &[2], 1, 3, 4, &mut rng);
        let numerical = Tensor::randn(&[2, 3, 2], &mut rng).mul_scalar(0.5);
        let categorical = vec![vec![0usize, 1, 0, 1, 0, 1]];
        check_gradients(
            &mut store,
            &move |g| {
                let out = enc.forward(
                    g,
                    &CovariateInput {
                        numerical: &numerical,
                        categorical: &categorical,
                    },
                );
                let sq = g.square(out);
                g.mean(sq)
            },
            1e-2,
            3e-2,
        )
        .unwrap();
    }
}
