//! # lip-par
//!
//! A zero-dependency scoped threadpool with a **deterministic partitioning
//! contract**, shared by every parallel kernel in the workspace.
//!
//! ## The contract
//!
//! 1. **Partitioning depends only on the problem size.** Work is split into
//!    fixed-size chunks derived from the input's shape (never from the thread
//!    count, load, or timing). The same input always yields the same chunks.
//! 2. **Chunks are pure and disjoint.** A chunk's result is a function of
//!    the chunk index and the inputs alone; output regions never overlap.
//! 3. **Reductions combine per-chunk partials in a fixed tree order**
//!    ([`combine_tree`]): partials are paired `(0,1) (2,3) …` level by level.
//!    Floating-point reductions therefore associate identically no matter
//!    which thread computed which partial.
//!
//! Together these make every kernel built on this crate **bit-identical
//! whether it runs on 1 or 64 threads** — the thread count only decides who
//! executes a chunk, never what is computed. PR 1's byte-level
//! reproducibility guarantees survive parallelism unchanged.
//!
//! ## Thread budget
//!
//! The number of workers a parallel region may use comes from, in order:
//! a scoped [`with_threads`] override (used by the test battery to sweep
//! thread counts in-process), the `LIP_THREADS` environment variable (read
//! once per process), and finally [`std::thread::available_parallelism`].
//! Nested regions run serially on their caller: the pool never deadlocks on
//! itself and oversubscription stays bounded at one level of fan-out.
//!
//! ## Example
//!
//! ```
//! // A deterministic chunked sum: same bits at any thread count.
//! let data: Vec<f32> = (0..100_000).map(|i| (i as f32).sin()).collect();
//! let sum = |threads: usize| {
//!     lip_par::with_threads(threads, || {
//!         lip_par::reduce_chunks(
//!             lip_par::Partition::new(data.len(), lip_par::REDUCE_CHUNK),
//!             |_, r| data[r].iter().sum::<f32>(),
//!             |a, b| a + b,
//!         )
//!         .unwrap_or(0.0)
//!     })
//! };
//! assert_eq!(sum(1).to_bits(), sum(8).to_bits());
//! ```

#![warn(missing_docs)]
// The ONLY crate in the workspace allowed to use `unsafe` (every other crate
// carries `#![forbid(unsafe_code)]`): the five sites below this root are the
// disjoint-window fan-out in `chunk.rs` and the scoped-lifetime erasure in
// `pool.rs`, each with a `// SAFETY:` argument, and each covered by the
// static race checker in `lip-analyze --verify-plan`.
#![deny(unsafe_op_in_unsafe_fn)]

mod chunk;
mod pool;

pub use chunk::{
    combine_tree, for_each_chunk, map_chunks, par_chunks_mut, reduce_chunks, Partition,
};

use std::cell::Cell;
use std::sync::OnceLock;

/// Elements per chunk for elementwise kernels (maps, broadcasts, fused
/// accumulation). ~128 KiB of f32 per chunk: large enough to amortize
/// dispatch, small enough to load-balance.
pub const ELEMWISE_CHUNK: usize = 32 * 1024;

/// Elements per partial for chunked reductions (sum / mean / loss folds).
/// Every full reduction uses this chunking even on one thread, so the
/// combine tree — and therefore the f32 rounding — is fixed by size alone.
pub const REDUCE_CHUNK: usize = 16 * 1024;

/// Multiply–accumulates per matmul chunk; rows are grouped so one chunk is
/// roughly this much work regardless of the operand shapes.
pub const MATMUL_CHUNK_MACS: usize = 1 << 18;

thread_local! {
    /// Scoped [`with_threads`] override for the current thread.
    static THREAD_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// `LIP_THREADS`, parsed once per process. `Some(n >= 1)` when set and valid.
fn env_threads() -> Option<usize> {
    static ENV: OnceLock<Option<usize>> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("LIP_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .map(|n| n.max(1))
    })
}

/// The thread budget for parallel regions started by this thread:
/// [`with_threads`] override, else `LIP_THREADS`, else the machine's
/// available parallelism. Always at least 1.
pub fn max_threads() -> usize {
    if let Some(n) = THREAD_OVERRIDE.with(Cell::get) {
        return n;
    }
    if let Some(n) = env_threads() {
        return n;
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Run `f` with the thread budget pinned to `threads` on this thread.
///
/// This is how the test battery sweeps thread counts in one process; the
/// deterministic contract promises `f`'s numeric results do not depend on
/// the value chosen. Restores the previous budget on exit, including on
/// panic (so a failing property case cannot poison later cases).
pub fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    assert!(threads >= 1, "thread budget must be at least 1");
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(THREAD_OVERRIDE.with(|c| c.replace(Some(threads))));
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_threads_overrides_and_restores() {
        let outside = max_threads();
        let inside = with_threads(5, max_threads);
        assert_eq!(inside, 5);
        assert_eq!(max_threads(), outside);
        // nesting: innermost override wins, both restore
        with_threads(2, || {
            assert_eq!(max_threads(), 2);
            with_threads(7, || assert_eq!(max_threads(), 7));
            assert_eq!(max_threads(), 2);
        });
    }

    #[test]
    fn with_threads_restores_on_panic() {
        let before = max_threads();
        let r = std::panic::catch_unwind(|| with_threads(3, || panic!("boom")));
        assert!(r.is_err());
        assert_eq!(max_threads(), before);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_budget_rejected() {
        with_threads(0, || ());
    }
}
