//! The persistent worker pool and scoped parallel regions.
//!
//! Workers are spawned lazily (up to the largest budget ever requested) and
//! live for the process. A *region* hands the same `task` closure to the
//! caller plus `helpers` pool workers; the closure races over a shared chunk
//! counter, so whichever thread is free takes the next chunk. The region
//! blocks until every helper finished, which is what makes it sound to pass
//! borrowed (non-`'static`) closures to pool threads.
//!
//! Nesting: a region started from inside another region (e.g. a tensor
//! kernel called by a parallelized benchmark sweep) runs serially on its
//! caller. Pool workers therefore never block on other pool jobs, every
//! submitted job terminates, and the pool cannot deadlock on itself.

use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, OnceLock};

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Shared {
    queue: Mutex<VecDeque<Job>>,
    work_ready: Condvar,
}

struct Pool {
    shared: Arc<Shared>,
    /// How many workers have been spawned so far.
    spawned: Mutex<usize>,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        shared: Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            work_ready: Condvar::new(),
        }),
        spawned: Mutex::new(0),
    })
}

impl Pool {
    /// Grow the pool until at least `n` workers exist.
    fn ensure_workers(&self, n: usize) {
        let mut spawned = self.spawned.lock().expect("pool spawn lock");
        while *spawned < n {
            let shared = Arc::clone(&self.shared);
            std::thread::Builder::new()
                .name(format!("lip-par-{spawned}"))
                .spawn(move || worker_loop(&shared))
                .expect("spawn lip-par worker");
            *spawned += 1;
        }
    }

    fn submit(&self, job: Job) {
        self.shared
            .queue
            .lock()
            .expect("pool queue lock")
            .push_back(job);
        self.shared.work_ready.notify_one();
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("pool queue lock");
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                queue = shared.work_ready.wait(queue).expect("pool queue lock");
            }
        };
        job();
    }
}

/// Completion latch for one region: counts outstanding helper jobs and
/// remembers whether any of them panicked.
struct Latch {
    state: Mutex<(usize, bool)>,
    done: Condvar,
}

impl Latch {
    fn new(outstanding: usize) -> Self {
        Latch {
            state: Mutex::new((outstanding, false)),
            done: Condvar::new(),
        }
    }

    fn job_done(&self, panicked: bool) {
        let mut state = self.state.lock().expect("latch lock");
        state.0 -= 1;
        state.1 |= panicked;
        if state.0 == 0 {
            self.done.notify_all();
        }
    }

    /// Block until every job finished; returns true if any panicked.
    fn wait(&self) -> bool {
        let mut state = self.state.lock().expect("latch lock");
        while state.0 > 0 {
            state = self.done.wait(state).expect("latch lock");
        }
        state.1
    }
}

thread_local! {
    /// True while this thread is executing a region's task (caller or
    /// worker). Regions started under it run serially.
    static IN_REGION: Cell<bool> = const { Cell::new(false) };
}

/// Run `task` while marked as inside a region, clearing the mark afterwards
/// even on panic. Returns whether `task` panicked (payload re-raised or
/// recorded by the caller).
fn run_marked(task: &(dyn Fn() + Sync)) -> std::thread::Result<()> {
    struct Clear;
    impl Drop for Clear {
        fn drop(&mut self) {
            IN_REGION.with(|c| c.set(false));
        }
    }
    IN_REGION.with(|c| c.set(true));
    let _clear = Clear;
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(task))
}

/// Execute `task` on the calling thread **and** `helpers` pool workers,
/// returning once every copy has finished. `task` must partition its own
/// work (all callers go through [`crate::for_each_chunk`]'s shared chunk
/// counter).
///
/// Runs `task` once inline instead when `helpers == 0` or when already
/// inside a region (see module docs on nesting).
pub(crate) fn run_region<'env>(helpers: usize, task: &'env (dyn Fn() + Sync + 'env)) {
    if helpers == 0 || IN_REGION.with(Cell::get) {
        task();
        return;
    }

    let pool = pool();
    pool.ensure_workers(helpers);
    let latch = Arc::new(Latch::new(helpers));
    for _ in 0..helpers {
        let latch = Arc::clone(&latch);
        let job: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
            let panicked = run_marked(task).is_err();
            latch.job_done(panicked);
        });
        // SAFETY: erasing 'env to 'static is sound because this function
        // does not return until the latch confirms every job ran to
        // completion — the borrows inside `task` outlive all uses. The
        // panic payloads are dropped inside the job (never unwound across
        // the pool), so workers stay alive.
        let job: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Job>(job)
        };
        pool.submit(job);
    }

    // The caller participates instead of idling, then waits for helpers so
    // the borrowed task stays valid (even when unwinding).
    let caller = run_marked(task);
    let helper_panicked = latch.wait();
    if let Err(payload) = caller {
        std::panic::resume_unwind(payload);
    }
    if helper_panicked {
        panic!("lip-par: worker panicked inside a parallel region");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn region_runs_task_on_all_participants() {
        let entries = AtomicUsize::new(0);
        run_region(3, &|| {
            entries.fetch_add(1, Ordering::SeqCst);
        });
        // caller + 3 helpers
        assert_eq!(entries.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn nested_region_is_serial_inline() {
        let inner_entries = AtomicUsize::new(0);
        let outer_entries = AtomicUsize::new(0);
        run_region(2, &|| {
            outer_entries.fetch_add(1, Ordering::SeqCst);
            run_region(5, &|| {
                inner_entries.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(outer_entries.load(Ordering::SeqCst), 3);
        // each of the 3 outer copies ran the inner task exactly once, inline
        assert_eq!(inner_entries.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn helper_panic_propagates_to_caller() {
        let hits = AtomicUsize::new(0);
        let r = std::panic::catch_unwind(|| {
            run_region(2, &|| {
                // every participant panics; caller must still observe it
                // after all helpers completed
                hits.fetch_add(1, Ordering::SeqCst);
                panic!("kernel bug");
            });
        });
        assert!(r.is_err());
        assert_eq!(hits.load(Ordering::SeqCst), 3);
        // pool still usable afterwards
        let again = AtomicUsize::new(0);
        run_region(2, &|| {
            again.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(again.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn borrowed_state_survives_region() {
        let mut owned = vec![0u64; 128];
        let parts: Vec<&mut [u64]> = owned.chunks_mut(32).collect();
        // hand each helper a disjoint borrow through an atomic claim index
        let next = AtomicUsize::new(0);
        let parts = Mutex::new(parts);
        run_region(3, &|| loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            let Some(part) = parts.lock().unwrap().get_mut(i).map(|p| p.as_mut_ptr()) else {
                break;
            };
            // SAFETY: each index claimed once; slices are disjoint.
            unsafe {
                for k in 0..32 {
                    *part.add(k) = (i * 32 + k) as u64;
                }
            }
        });
        for (i, v) in owned.iter().enumerate() {
            assert_eq!(*v, i as u64);
        }
    }
}
