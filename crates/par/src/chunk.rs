//! Deterministic work partitioning: fixed-size chunks, ordered chunk maps,
//! fixed-tree reductions, and disjoint mutable slice fan-out.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::pool::run_region;

/// A fixed partition of `len` items into chunks of `chunk` items (the last
/// chunk may be short). The partition is a pure function of the two sizes —
/// never of the thread count — which is the root of the workspace's
/// bit-identical parallelism guarantee.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Partition {
    len: usize,
    chunk: usize,
}

impl Partition {
    /// Partition `len` items into `chunk`-sized chunks. `chunk` must be >= 1.
    pub fn new(len: usize, chunk: usize) -> Self {
        assert!(chunk >= 1, "chunk size must be at least 1");
        Partition { len, chunk }
    }

    /// Total number of items.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when there are no items (and therefore no chunks).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Items per full chunk.
    #[inline]
    pub fn chunk(&self) -> usize {
        self.chunk
    }

    /// Number of chunks (0 when `len == 0`).
    #[inline]
    pub fn n_chunks(&self) -> usize {
        self.len.div_ceil(self.chunk)
    }

    /// Item range of chunk `i`.
    #[inline]
    pub fn range(&self, i: usize) -> Range<usize> {
        debug_assert!(i < self.n_chunks(), "chunk {i} out of range");
        let start = i * self.chunk;
        start..(start + self.chunk).min(self.len)
    }

    /// Every chunk range in index order — the introspection surface the
    /// static race checker in `lip-analyze` sweeps to prove that the ranges
    /// handed to [`par_chunks_mut`] windows are pairwise disjoint and cover
    /// `0..len` exactly. This iterator IS the window arithmetic: each window
    /// a parallel region mutates is `out[range]` for exactly one of these.
    pub fn ranges(&self) -> impl Iterator<Item = Range<usize>> + '_ {
        (0..self.n_chunks()).map(|i| self.range(i))
    }
}

/// Run `body(chunk_index, item_range)` for every chunk, fanning chunks out
/// across the thread budget. Chunks are claimed dynamically, so `body` must
/// derive everything it computes from the chunk index and range alone (the
/// executing thread is not deterministic; the chunks are).
pub fn for_each_chunk(part: Partition, body: impl Fn(usize, Range<usize>) + Sync) {
    let n = part.n_chunks();
    if n == 0 {
        return;
    }
    let threads = crate::max_threads().min(n);
    if threads <= 1 {
        for i in 0..n {
            body(i, part.range(i));
        }
        return;
    }
    let next = AtomicUsize::new(0);
    run_region(threads - 1, &|| loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= n {
            break;
        }
        body(i, part.range(i));
    });
}

/// Map every chunk to a value and return the values **in chunk order**
/// (index 0 first), independent of which thread produced which.
pub fn map_chunks<T: Send>(
    part: Partition,
    map: impl Fn(usize, Range<usize>) -> T + Sync,
) -> Vec<T> {
    let n = part.n_chunks();
    let produced: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(n));
    for_each_chunk(part, |i, range| {
        let value = map(i, range);
        produced.lock().expect("chunk result lock").push((i, value));
    });
    let mut produced = produced.into_inner().expect("chunk result lock");
    debug_assert_eq!(produced.len(), n, "every chunk must produce a value");
    produced.sort_unstable_by_key(|&(i, _)| i);
    produced.into_iter().map(|(_, v)| v).collect()
}

/// Combine values pairwise, level by level: `(0,1) (2,3) …`, an odd tail
/// carried up unchanged. The association depends only on `parts.len()`, so
/// floating-point folds round identically at any thread count.
pub fn combine_tree<T>(mut parts: Vec<T>, combine: impl Fn(T, T) -> T) -> Option<T> {
    while parts.len() > 1 {
        let mut next = Vec::with_capacity(parts.len().div_ceil(2));
        let mut it = parts.into_iter();
        while let Some(a) = it.next() {
            next.push(match it.next() {
                Some(b) => combine(a, b),
                None => a,
            });
        }
        parts = next;
    }
    parts.pop()
}

/// Chunked map-reduce: per-chunk partials from `map`, folded by `combine`
/// in the fixed tree order. `None` only when `part` is empty.
pub fn reduce_chunks<T: Send>(
    part: Partition,
    map: impl Fn(usize, Range<usize>) -> T + Sync,
    combine: impl Fn(T, T) -> T,
) -> Option<T> {
    combine_tree(map_chunks(part, map), combine)
}

/// Raw pointer that may cross threads; soundness is the caller's obligation
/// (here: every chunk writes a disjoint region).
struct SendPtr<T>(*mut T);
// SAFETY: the pointer is only dereferenced inside `par_chunks_mut`, where
// each thread derives a window from a `Partition::range` that is disjoint
// from every other chunk's (see the static race checker in lip-analyze) —
// no two threads ever touch the same element, so crossing threads is sound
// whenever `T: Send`.
unsafe impl<T: Send> Send for SendPtr<T> {}
// SAFETY: shared references to `SendPtr` only ever read the pointer value
// itself (to call `.add` with a chunk-disjoint offset); the pointee is
// accessed exclusively through the per-chunk disjoint windows above.
unsafe impl<T: Send> Sync for SendPtr<T> {}

/// Split `out` into `chunk`-sized disjoint windows and run
/// `body(chunk_index, start_item, window)` for each in parallel. The windows
/// partition `out` exactly like [`Partition::range`], so writes are
/// per-chunk exclusive.
pub fn par_chunks_mut<T: Send>(
    out: &mut [T],
    chunk: usize,
    body: impl Fn(usize, usize, &mut [T]) + Sync,
) {
    let part = Partition::new(out.len(), chunk);
    let base = SendPtr(out.as_mut_ptr());
    let base = &base;
    for_each_chunk(part, |i, range| {
        // SAFETY: `range` values for distinct `i` never overlap and stay
        // within `out` (`Partition::range` guarantees both — the property
        // `lip-analyze`'s partition checker proves symbolically for every
        // length), and `out` is exclusively borrowed for the duration of
        // the region, so each window is a unique `&mut` into `out`.
        let window =
            unsafe { std::slice::from_raw_parts_mut(base.0.add(range.start), range.len()) };
        body(i, range.start, window);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_covers_exactly() {
        let p = Partition::new(10, 3);
        assert_eq!(p.n_chunks(), 4);
        let ranges: Vec<_> = (0..p.n_chunks()).map(|i| p.range(i)).collect();
        assert_eq!(ranges, vec![0..3, 3..6, 6..9, 9..10]);
        assert_eq!(Partition::new(0, 8).n_chunks(), 0);
        assert_eq!(Partition::new(8, 8).n_chunks(), 1);
        assert_eq!(Partition::new(9, 8).n_chunks(), 2);
    }

    #[test]
    fn map_chunks_returns_in_chunk_order() {
        for threads in [1usize, 2, 3, 8] {
            let got = crate::with_threads(threads, || {
                map_chunks(Partition::new(23, 4), |i, r| (i, r.start, r.end))
            });
            let want: Vec<_> = (0..6)
                .map(|i| (i, i * 4, ((i + 1) * 4).min(23)))
                .collect();
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn combine_tree_is_fixed_pairwise() {
        // strings expose the association order exactly
        let parts: Vec<String> = (0..5).map(|i| i.to_string()).collect();
        let joined = combine_tree(parts, |a, b| format!("({a}+{b})")).unwrap();
        assert_eq!(joined, "(((0+1)+(2+3))+4)");
        assert_eq!(combine_tree(Vec::<u32>::new(), |a, b| a + b), None);
        assert_eq!(combine_tree(vec![7], |a, b| a + b), Some(7));
    }

    #[test]
    fn reduce_chunks_bit_identical_across_thread_counts() {
        let data: Vec<f32> = (0..100_003).map(|i| ((i * 37) % 101) as f32 * 0.125).collect();
        let sum = |threads: usize| {
            crate::with_threads(threads, || {
                reduce_chunks(
                    Partition::new(data.len(), crate::REDUCE_CHUNK),
                    |_, r| data[r].iter().sum::<f32>(),
                    |a, b| a + b,
                )
                .unwrap()
            })
        };
        let base = sum(1);
        for threads in [2usize, 3, 8] {
            assert_eq!(base.to_bits(), sum(threads).to_bits(), "threads={threads}");
        }
    }

    #[test]
    fn par_chunks_mut_writes_disjoint_windows() {
        for threads in [1usize, 3, 8] {
            let mut out = vec![0usize; 1000];
            crate::with_threads(threads, || {
                par_chunks_mut(&mut out, 64, |i, start, window| {
                    for (k, slot) in window.iter_mut().enumerate() {
                        *slot = i * 1_000_000 + start + k;
                    }
                });
            });
            for (idx, &v) in out.iter().enumerate() {
                assert_eq!(v, (idx / 64) * 1_000_000 + idx, "threads={threads}");
            }
        }
    }

    #[test]
    fn empty_input_runs_no_chunks() {
        let mut out: Vec<f32> = vec![];
        par_chunks_mut(&mut out, 8, |_, _, _| panic!("no chunks expected"));
        for_each_chunk(Partition::new(0, 4), |_, _| panic!("no chunks expected"));
        assert!(map_chunks(Partition::new(0, 4), |i, _| i).is_empty());
    }
}
