//! Numerical gradient checks for every differentiable op on the tape.

use lip_autograd::gradcheck::check_gradients;
use lip_autograd::{Graph, ParamId, ParamStore, Var};
use lip_tensor::Tensor;
use lip_rng::rngs::StdRng;
use lip_rng::SeedableRng;

fn store1(shape: &[usize], seed: u64) -> (ParamStore, ParamId) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut s = ParamStore::new();
    let id = s.add("p", Tensor::randn(shape, &mut rng).mul_scalar(0.4));
    (s, id)
}

fn store2(sa: &[usize], sb: &[usize], seed: u64) -> (ParamStore, ParamId, ParamId) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut s = ParamStore::new();
    let a = s.add("a", Tensor::randn(sa, &mut rng).mul_scalar(0.4));
    let b = s.add("b", Tensor::randn(sb, &mut rng).mul_scalar(0.4).add_scalar(1.5));
    (s, a, b)
}

fn check(store: &mut ParamStore, build: impl Fn(&mut Graph) -> Var) {
    check_gradients(store, &build, 1e-2, 3e-2).unwrap();
}

#[test]
fn grad_add_broadcast() {
    let (mut s, a, b) = store2(&[2, 3], &[3], 1);
    check(&mut s, |g| {
        let (av, bv) = (g.param(a), g.param(b));
        let y = g.add(av, bv);
        g.mean(y)
    });
}

#[test]
fn grad_sub_broadcast_leading() {
    let (mut s, a, b) = store2(&[2, 1, 3], &[4, 1], 2);
    check(&mut s, |g| {
        let (av, bv) = (g.param(a), g.param(b));
        let y = g.sub(av, bv);
        let sq = g.square(y);
        g.mean(sq)
    });
}

#[test]
fn grad_mul_div() {
    let (mut s, a, b) = store2(&[3, 2], &[3, 2], 3);
    check(&mut s, |g| {
        let (av, bv) = (g.param(a), g.param(b));
        let m = g.mul(av, bv);
        let d = g.div(m, bv);
        g.mean(d)
    });
}

#[test]
fn grad_matmul_2d() {
    let (mut s, a, b) = store2(&[3, 4], &[4, 2], 4);
    check(&mut s, |g| {
        let (av, bv) = (g.param(a), g.param(b));
        let y = g.matmul(av, bv);
        let sq = g.square(y);
        g.mean(sq)
    });
}

#[test]
fn grad_matmul_batched_broadcast_weights() {
    let (mut s, a, b) = store2(&[2, 3, 4], &[4, 2], 5);
    check(&mut s, |g| {
        let (av, bv) = (g.param(a), g.param(b));
        let y = g.matmul(av, bv);
        g.mean(y)
    });
}

#[test]
fn grad_matmul_batched_both() {
    let (mut s, a, b) = store2(&[2, 3, 4], &[2, 4, 3], 6);
    check(&mut s, |g| {
        let (av, bv) = (g.param(a), g.param(b));
        let y = g.matmul(av, bv);
        let t = g.tanh(y);
        g.mean(t)
    });
}

#[test]
fn grad_permute_reshape() {
    let (mut s, a) = store1(&[2, 3, 4], 7);
    check(&mut s, |g| {
        let av = g.param(a);
        let p = g.permute(av, &[2, 0, 1]);
        let r = g.reshape(p, &[4, 6]);
        let sq = g.square(r);
        g.mean(sq)
    });
}

#[test]
fn grad_broadcast_to() {
    let (mut s, a) = store1(&[1, 3], 8);
    check(&mut s, |g| {
        let av = g.param(a);
        let b = g.broadcast_to(av, &[4, 3]);
        let sq = g.square(b);
        g.mean(sq)
    });
}

#[test]
fn grad_softmax() {
    let (mut s, a) = store1(&[2, 5], 9);
    check(&mut s, |g| {
        let av = g.param(a);
        let sm = g.softmax(av);
        let sq = g.square(sm);
        g.mean(sq)
    });
}

#[test]
fn grad_log_softmax() {
    let (mut s, a) = store1(&[3, 4], 10);
    check(&mut s, |g| {
        let av = g.param(a);
        let ls = g.log_softmax(av);
        let sq = g.square(ls);
        g.mean(sq)
    });
}

#[test]
fn grad_activations() {
    for seed in [11u64, 12, 13] {
        let (mut s, a) = store1(&[2, 4], seed);
        check(&mut s, |g| {
            let av = g.param(a);
            let r = g.relu(av);
            let ge = g.gelu(r);
            let si = g.sigmoid(ge);
            let th = g.tanh(si);
            g.mean(th)
        });
    }
}

#[test]
fn grad_sqrt_exp_ln() {
    let mut rng = StdRng::seed_from_u64(14);
    let mut s = ParamStore::new();
    // keep values comfortably positive for sqrt/ln
    let a = s.add("a", Tensor::rand_uniform(&[2, 3], 0.8, 2.0, &mut rng));
    check(&mut s, |g| {
        let av = g.param(a);
        let sq = g.sqrt(av);
        let e = g.exp(sq);
        let l = g.ln(e);
        g.mean(l)
    });
}

#[test]
fn grad_abs_away_from_zero() {
    let mut s = ParamStore::new();
    let a = s.add("a", Tensor::from_vec(vec![0.5, -0.7, 1.2, -2.0], &[4]));
    check(&mut s, |g| {
        let av = g.param(a);
        let ab = g.abs(av);
        g.mean(ab)
    });
}

#[test]
fn grad_dropout_fixed_mask() {
    let (mut s, a) = store1(&[2, 4], 15);
    let mask = Tensor::from_vec(vec![2.0, 0.0, 2.0, 0.0, 0.0, 2.0, 2.0, 2.0], &[2, 4]);
    check(&mut s, move |g| {
        let av = g.param(a);
        let d = g.dropout_mask(av, mask.clone());
        let sq = g.square(d);
        g.mean(sq)
    });
}

#[test]
fn grad_reductions() {
    let (mut s, a) = store1(&[2, 3, 2], 16);
    check(&mut s, |g| {
        let av = g.param(a);
        let s0 = g.sum_axis(av, 1);
        let m0 = g.mean_axis(s0, 2);
        let sq = g.square(m0);
        g.sum(sq)
    });
}

#[test]
fn grad_concat_slice() {
    let (mut s, a, b) = store2(&[2, 3], &[2, 2], 17);
    check(&mut s, |g| {
        let (av, bv) = (g.param(a), g.param(b));
        let c = g.concat(&[av, bv], 1);
        let sl = g.slice_axis(c, 1, 1, 4);
        let sq = g.square(sl);
        g.mean(sq)
    });
}

#[test]
fn grad_gather_rows() {
    let (mut s, a) = store1(&[5, 3], 18);
    check(&mut s, |g| {
        let av = g.param(a);
        let picked = g.gather_rows(av, &[0, 2, 2, 4]);
        let sq = g.square(picked);
        g.mean(sq)
    });
}

#[test]
fn grad_mse_mae_losses() {
    let (mut s, a) = store1(&[2, 3], 19);
    let target = Tensor::from_vec(vec![0.1, -0.2, 0.3, 0.4, -0.5, 0.6], &[2, 3]);
    let t2 = target.clone();
    check(&mut s, move |g| {
        let av = g.param(a);
        let t = g.constant(t2.clone());
        g.mse_loss(av, t)
    });
    check(&mut s, move |g| {
        let av = g.param(a);
        let t = g.constant(target.clone());
        g.mae_loss(av, t)
    });
}

#[test]
fn grad_smooth_l1_both_regimes() {
    // values straddle the beta threshold so both branches are exercised
    let mut s = ParamStore::new();
    let a = s.add("a", Tensor::from_vec(vec![0.05, 0.4, -0.03, -0.9], &[4]));
    let target = Tensor::zeros(&[4]);
    check(&mut s, move |g| {
        let av = g.param(a);
        let t = g.constant(target.clone());
        g.smooth_l1_loss(av, t, 0.2)
    });
}

#[test]
fn grad_cross_entropy_rows() {
    let (mut s, a) = store1(&[4, 5], 20);
    check(&mut s, |g| {
        let av = g.param(a);
        g.cross_entropy_rows(av, &[1, 0, 4, 2])
    });
}

#[test]
fn grad_transformer_like_composite() {
    // A miniature attention block: checks interactions between permute,
    // matmul, softmax and residual adds — the core of every model here.
    let mut rng = StdRng::seed_from_u64(21);
    let mut s = ParamStore::new();
    let wq = s.add("wq", Tensor::randn(&[4, 4], &mut rng).mul_scalar(0.3));
    let wk = s.add("wk", Tensor::randn(&[4, 4], &mut rng).mul_scalar(0.3));
    let wv = s.add("wv", Tensor::randn(&[4, 4], &mut rng).mul_scalar(0.3));
    let x = Tensor::randn(&[2, 3, 4], &mut rng).mul_scalar(0.5);
    check(&mut s, move |g| {
        let xc = g.constant(x.clone());
        let q = {
            let w = g.param(wq);
            g.matmul(xc, w)
        };
        let k = {
            let w = g.param(wk);
            g.matmul(xc, w)
        };
        let v = {
            let w = g.param(wv);
            g.matmul(xc, w)
        };
        let kt = g.transpose(k, 1, 2);
        let scores = g.matmul(q, kt);
        let scaled = g.mul_scalar(scores, 0.5);
        let attn = g.softmax(scaled);
        let ctx = g.matmul(attn, v);
        let res = g.add(ctx, xc);
        let sq = g.square(res);
        g.mean(sq)
    });
}

#[test]
fn contrastive_symmetric_ce_gradient() {
    // The paper's dual-encoder pre-training loss: logits = Vt·Vcᵀ·e^t with
    // symmetric row/column cross-entropy.
    let mut rng = StdRng::seed_from_u64(22);
    let mut s = ParamStore::new();
    let vt = s.add("vt", Tensor::randn(&[3, 4], &mut rng).mul_scalar(0.4));
    let vc = s.add("vc", Tensor::randn(&[3, 4], &mut rng).mul_scalar(0.4));
    check(&mut s, |g| {
        let t = g.param(vt);
        let c = g.param(vc);
        let ct = g.transpose(c, 0, 1);
        let logits = g.matmul(t, ct);
        let labels: Vec<usize> = (0..3).collect();
        let row = g.cross_entropy_rows(logits, &labels);
        let logits_t = g.transpose(logits, 0, 1);
        let col = g.cross_entropy_rows(logits_t, &labels);
        let both = g.add(row, col);
        g.mul_scalar(both, 0.5)
    });
}
