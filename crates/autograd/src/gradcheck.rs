//! Finite-difference gradient checking, used throughout the workspace's test
//! suites to validate every layer's backward pass.

use crate::{Graph, ParamStore, Var};

/// Compare analytic gradients against central finite differences for every
/// trainable scalar in `store`.
///
/// `build` must deterministically construct the scalar loss from the store's
/// current parameter values (no fresh randomness between calls — fix dropout
/// masks beforehand).
///
/// Returns `Err` with a description of the first element whose relative error
/// exceeds `tol`.
pub fn check_gradients(
    store: &mut ParamStore,
    build: &dyn Fn(&mut Graph) -> Var,
    eps: f32,
    tol: f32,
) -> Result<(), String> {
    // Analytic pass.
    let analytic: Vec<(crate::ParamId, Option<lip_tensor::Tensor>)> = {
        let mut g = Graph::new(store);
        let loss = build(&mut g);
        assert_eq!(
            g.value(loss).numel(),
            1,
            "gradient check requires a scalar loss"
        );
        let grads = g.backward(loss);
        store
            .ids()
            .map(|id| (id, grads.for_param(id)))
            .collect()
    };

    for (id, grad) in analytic {
        if store.is_frozen(id) {
            continue;
        }
        let original = store.value(id).clone();
        let n = original.numel();
        // Gradients may be strided views (broadcast/permute backward); gather
        // them in logical order once rather than indexing raw storage.
        let grad_vals = grad.as_ref().map(|g| g.to_vec());
        for elem in 0..n {
            let an = grad_vals.as_ref().map_or(0.0, |g| g[elem]);

            let mut plus = original.clone();
            plus.data_mut()[elem] += eps;
            store.set_value(id, plus);
            let lp = eval_loss(store, build);

            let mut minus = original.clone();
            minus.data_mut()[elem] -= eps;
            store.set_value(id, minus);
            let lm = eval_loss(store, build);

            store.set_value(id, original.clone());

            let fd = (lp - lm) / (2.0 * eps);
            let denom = 1.0f32.max(an.abs()).max(fd.abs());
            if (an - fd).abs() / denom > tol {
                return Err(format!(
                    "param '{}' element {elem}: analytic {an} vs finite-difference {fd}",
                    store.name(id)
                ));
            }
        }
    }
    Ok(())
}

fn eval_loss(store: &ParamStore, build: &dyn Fn(&mut Graph) -> Var) -> f32 {
    let mut g = Graph::new(store);
    let loss = build(&mut g);
    g.value(loss).item()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lip_tensor::Tensor;
    use lip_rng::rngs::StdRng;
    use lip_rng::SeedableRng;

    fn store_with(shapes: &[&[usize]]) -> ParamStore {
        let mut rng = StdRng::seed_from_u64(17);
        let mut s = ParamStore::new();
        for (i, shape) in shapes.iter().enumerate() {
            s.add(format!("p{i}"), Tensor::randn(shape, &mut rng).mul_scalar(0.5));
        }
        s
    }

    #[test]
    fn catches_a_wrong_gradient() {
        // loss = sum(w); a deliberately wrong build multiplies the value used
        // for the analytic pass — mismatch must be detected
        let mut s = store_with(&[&[3]]);
        let w = crate::ParamId(0);
        // build: loss = sum(w * w) but we check against analytic of itself,
        // so instead construct a direct inconsistency via non-determinism:
        use std::cell::Cell;
        let flip = Cell::new(false);
        let res = check_gradients(
            &mut s,
            &move |g: &mut Graph| {
                let wv = g.param(w);
                let first = !flip.get();
                flip.set(true);
                if first {
                    // analytic pass sees sum(w)
                    g.sum(wv)
                } else {
                    // finite-difference passes see sum(2w)
                    let d = g.mul_scalar(wv, 2.0);
                    g.sum(d)
                }
            },
            1e-3,
            1e-3,
        );
        assert!(res.is_err());
    }

    #[test]
    fn passes_on_correct_composite() {
        let mut s = store_with(&[&[2, 3], &[3]]);
        let w = crate::ParamId(0);
        let b = crate::ParamId(1);
        let ok = check_gradients(
            &mut s,
            &|g: &mut Graph| {
                let x = g.constant(Tensor::from_vec(
                    vec![0.3, -0.1, 0.7, 0.2, 0.5, -0.4],
                    &[3, 2],
                ));
                let wv = g.param(w);
                let bv = g.param(b);
                let h = g.matmul(x, wv);
                let h = g.add(h, bv);
                let h = g.tanh(h);
                g.mean(h)
            },
            1e-2,
            2e-2,
        );
        assert!(ok.is_ok(), "{ok:?}");
    }
}
