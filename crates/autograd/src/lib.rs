//! # lip-autograd
//!
//! Tape-based reverse-mode automatic differentiation over [`lip_tensor`].
//!
//! A [`Graph`] records every forward operation as a node holding its result
//! tensor and an [`Op`] describing how to push gradients back
//! to its inputs. Model parameters live in a [`ParamStore`]; each forward pass
//! pulls them into the graph by id (an O(1) `Arc` clone), and
//! [`Graph::backward`] returns per-parameter gradients that the caller
//! accumulates back into the store for the optimizer.
//!
//! The graph also counts multiply–accumulate operations (MACs) as it builds,
//! which the evaluation crate uses to reproduce the paper's efficiency
//! columns.
//!
//! ## Example
//!
//! ```
//! use lip_autograd::{Graph, ParamStore};
//! use lip_tensor::Tensor;
//!
//! let mut store = ParamStore::new();
//! let w = store.add("w", Tensor::from_vec(vec![2.0], &[1, 1]));
//!
//! let mut g = Graph::new(&store);
//! let x = g.constant(Tensor::from_vec(vec![3.0], &[1, 1]));
//! let wv = g.param(w);
//! let y = g.matmul(x, wv);          // y = 6
//! let loss = g.mean(y);
//! let grads = g.backward(loss);
//! assert_eq!(grads.for_param(w).unwrap().item(), 3.0); // dy/dw = x
//! ```

#![forbid(unsafe_code)]

mod backward;
pub mod gradcheck;
mod graph;
pub mod op;
mod params;

pub use backward::Gradients;
pub use graph::{Graph, ProvenanceStep, SanitizerReport, Var};
pub use op::Op;
pub use params::{ParamId, ParamStore};
