//! The reverse sweep: seed the loss node with a unit gradient and walk the
//! tape backwards, accumulating per-node and per-parameter gradients.

use lip_tensor::Tensor;

use crate::graph::Graph;
use crate::op::Op;
use crate::{ParamId, ParamStore, Var};

/// Result of [`Graph::backward`]: one optional gradient per tape node, plus a
/// parameter-id index for convenient accumulation into a [`ParamStore`].
pub struct Gradients {
    by_node: Vec<Option<Tensor>>,
    params: Vec<(ParamId, usize)>,
}

impl Gradients {
    /// Gradient of the differentiated output w.r.t. node `v`, if any path
    /// connected them.
    pub fn for_var(&self, v: Var) -> Option<&Tensor> {
        self.by_node.get(v.0).and_then(|g| g.as_ref())
    }

    /// Gradient w.r.t. parameter `id` (summed across every tape node that
    /// referenced it), if the parameter participated in the computation.
    pub fn for_param(&self, id: ParamId) -> Option<Tensor> {
        let mut acc: Option<Tensor> = None;
        for &(pid, node) in &self.params {
            if pid != id {
                continue;
            }
            if let Some(g) = &self.by_node[node] {
                match &mut acc {
                    Some(a) => a.add_assign_scaled(g, 1.0),
                    None => acc = Some(g.clone()),
                }
            }
        }
        acc
    }

    /// Accumulate every parameter gradient into `store` (respecting freezes).
    pub fn apply_to(&self, store: &mut ParamStore) {
        // A parameter may appear at several tape nodes; sum contributions.
        for &(pid, node) in &self.params {
            if let Some(g) = &self.by_node[node] {
                store.accumulate_grad(pid, g);
            }
        }
    }
}

impl Graph<'_> {
    /// Run the reverse sweep from `output`, which is usually (but not
    /// necessarily) a scalar loss. The seed gradient is all-ones in the
    /// output's shape.
    pub fn backward(&self, output: Var) -> Gradients {
        let n = self.nodes.len();
        assert!(output.0 < n, "backward target is not on this tape");
        let mut by_node: Vec<Option<Tensor>> = (0..n).map(|_| None).collect();
        by_node[output.0] = Some(Tensor::ones(self.nodes[output.0].value.shape()));

        for i in (0..=output.0).rev() {
            let grad = match by_node[i].take() {
                Some(g) => g,
                None => continue,
            };
            let node = &self.nodes[i];
            if !matches!(node.op, Op::Leaf | Op::Param(_)) {
                let value_of = |v: Var| self.nodes[v.0].value.clone();
                for (input, contrib) in node.op.backward(&grad, &node.value, &value_of) {
                    debug_assert!(
                        input.0 < i,
                        "op at node {i} references a later node {}",
                        input.0
                    );
                    match &mut by_node[input.0] {
                        Some(acc) => acc.add_assign_scaled(&contrib, 1.0),
                        slot @ None => *slot = Some(contrib),
                    }
                }
            }
            by_node[i] = Some(grad);
        }

        let params = self
            .nodes
            .iter()
            .enumerate()
            .filter_map(|(i, node)| match node.op {
                Op::Param(id) => Some((id, i)),
                _ => None,
            })
            .collect();
        Gradients { by_node, params }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lip_tensor::Tensor;

    fn scalar_store() -> (ParamStore, ParamId) {
        let mut s = ParamStore::new();
        let w = s.add("w", Tensor::from_vec(vec![3.0], &[1]));
        (s, w)
    }

    #[test]
    fn linear_chain_gradient() {
        // loss = mean((2w)^2) = 4w^2, dloss/dw = 8w = 24
        let (store, w) = scalar_store();
        let mut g = Graph::new(&store);
        let wv = g.param(w);
        let y = g.mul_scalar(wv, 2.0);
        let sq = g.square(y);
        let loss = g.mean(sq);
        assert_eq!(g.value(loss).item(), 36.0);
        let grads = g.backward(loss);
        assert_eq!(grads.for_param(w).unwrap().item(), 24.0);
    }

    #[test]
    fn fan_out_accumulates() {
        // loss = w*w reached via two separate uses of the param node
        let (store, w) = scalar_store();
        let mut g = Graph::new(&store);
        let a = g.param(w);
        let b = g.param(w);
        let prod = g.mul(a, b);
        let loss = g.sum(prod);
        let grads = g.backward(loss);
        // d(w^2)/dw = 2w = 6, split across two param nodes then summed
        assert_eq!(grads.for_param(w).unwrap().item(), 6.0);
    }

    #[test]
    fn matmul_bias_gradients() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]));
        let b = store.add("b", Tensor::zeros(&[2]));
        let mut g = Graph::new(&store);
        let x = g.constant(Tensor::from_vec(vec![1.0, 1.0], &[1, 2]));
        let wv = g.param(w);
        let bv = g.param(b);
        let xw = g.matmul(x, wv);
        let y = g.add(xw, bv);
        let loss = g.sum(y);
        let grads = g.backward(loss);
        // dy/dw = x^T · 1 = all ones
        assert_eq!(grads.for_param(w).unwrap().to_vec(), vec![1.0; 4]);
        assert_eq!(grads.for_param(b).unwrap().to_vec(), vec![1.0, 1.0]);
    }

    #[test]
    fn constant_gets_no_param_grad() {
        let (store, w) = scalar_store();
        let mut g = Graph::new(&store);
        let c = g.constant(Tensor::scalar(5.0));
        let loss = g.sum(c);
        let grads = g.backward(loss);
        assert!(grads.for_param(w).is_none());
    }

    #[test]
    fn disconnected_param_gets_none() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::ones(&[1]));
        let u = store.add("u", Tensor::ones(&[1]));
        let mut g = Graph::new(&store);
        let wv = g.param(w);
        let _unused = g.param(u);
        let loss = g.sum(wv);
        let grads = g.backward(loss);
        assert!(grads.for_param(w).is_some());
        assert!(grads.for_param(u).is_none());
    }

    #[test]
    fn apply_to_respects_freeze() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::ones(&[1]));
        let f = store.add("f", Tensor::ones(&[1]));
        store.freeze(f);
        let mut g = Graph::new(&store);
        let wv = g.param(w);
        let fv = g.param(f);
        let s = g.add(wv, fv);
        let loss = g.sum(s);
        let grads = g.backward(loss);
        grads.apply_to(&mut store);
        assert_eq!(store.grad(w).item(), 1.0);
        assert_eq!(store.grad(f).item(), 0.0);
    }

    #[test]
    fn macs_counted_for_matmul() {
        let store = ParamStore::new();
        let mut g = Graph::new(&store);
        let a = g.constant(Tensor::ones(&[4, 8]));
        let b = g.constant(Tensor::ones(&[8, 3]));
        let _ = g.matmul(a, b);
        assert_eq!(g.macs(), 4 * 8 * 3);
    }
}
