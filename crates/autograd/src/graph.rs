//! The forward tape: every operation appends a node holding its computed
//! value and the [`Op`] needed to differentiate it.

use lip_tensor::Tensor;

use crate::op::Op;
use crate::{ParamId, ParamStore};

/// Handle to a node on a [`Graph`]'s tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var(pub(crate) usize);

impl Var {
    /// Position of this node on the tape (tape order is topological order).
    pub fn index(self) -> usize {
        self.0
    }
}

/// One step in a [`SanitizerReport`]'s provenance chain: an ancestor of the
/// node that first produced a non-finite value.
#[derive(Debug, Clone)]
pub struct ProvenanceStep {
    /// Tape index of the ancestor.
    pub node: usize,
    /// Op variant name at that ancestor.
    pub op: &'static str,
    /// Output shape at that ancestor.
    pub shape: Vec<usize>,
    /// Whether the ancestor's own value was still finite.
    pub finite: bool,
    /// Distance from the offending node (1 = direct input).
    pub depth: usize,
}

/// A NaN/Inf *producer* caught by the opt-in sanitizer: a node whose output
/// is non-finite while every input was still finite. Downstream nodes that
/// merely inherit the poison are suppressed, so each report is an actual
/// eruption site.
#[derive(Debug, Clone)]
pub struct SanitizerReport {
    /// Tape index of the offending node.
    pub node: usize,
    /// Op variant that produced the non-finite value.
    pub op: &'static str,
    /// Output shape of the offending node.
    pub shape: Vec<usize>,
    /// Ancestors of the offending node, nearest first (breadth-first,
    /// depth-limited).
    pub provenance: Vec<ProvenanceStep>,
}

impl std::fmt::Display for SanitizerReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "non-finite value produced at node {} ({}, shape {:?})",
            self.node, self.op, self.shape
        )?;
        for step in &self.provenance {
            write!(
                f,
                "\n  <- input[depth {}] node {} ({}, shape {:?}, {})",
                step.depth,
                step.node,
                step.op,
                step.shape,
                if step.finite { "finite" } else { "non-finite" }
            )?;
        }
        Ok(())
    }
}

pub(crate) struct Node {
    pub value: Tensor,
    pub op: Op,
}

/// A single forward pass: a tape of computed nodes over a parameter store.
///
/// Build one `Graph` per training step (or inference call), chain ops through
/// [`Var`] handles, then call [`Graph::backward`] on the loss node.
pub struct Graph<'s> {
    store: &'s ParamStore,
    pub(crate) nodes: Vec<Node>,
    macs: u64,
    /// When true, every pushed value is scanned for NaN/Inf (the opt-in
    /// numerical sanitizer).
    sanitize: bool,
    /// Per-node poison flags, maintained only while `sanitize` is on.
    poisoned: Vec<bool>,
    reports: Vec<SanitizerReport>,
}

impl<'s> Graph<'s> {
    /// Fresh tape over `store`.
    pub fn new(store: &'s ParamStore) -> Self {
        Graph {
            store,
            nodes: Vec::with_capacity(64),
            macs: 0,
            sanitize: false,
            poisoned: Vec::new(),
            reports: Vec::new(),
        }
    }

    /// Fresh tape with the numerical sanitizer enabled: every recorded node
    /// is checked for NaN/Inf, and the first node of each poison chain is
    /// reported with its op, index and input provenance. Costs one extra
    /// pass over each node's data; intended for debugging and `lip-analyze`.
    pub fn with_sanitizer(store: &'s ParamStore) -> Self {
        let mut g = Graph::new(store);
        g.sanitize = true;
        g
    }

    /// Whether the numerical sanitizer is active.
    pub fn sanitizer_enabled(&self) -> bool {
        self.sanitize
    }

    /// Findings collected by the sanitizer so far (empty when disabled or
    /// when every recorded value was finite).
    pub fn sanitizer_reports(&self) -> &[SanitizerReport] {
        &self.reports
    }

    /// The parameter store this tape reads from.
    pub fn store(&self) -> &ParamStore {
        self.store
    }

    /// The recorded op at `v`.
    pub fn op(&self, v: Var) -> &Op {
        &self.nodes[v.0].op
    }

    /// The recorded op at tape position `index`.
    pub fn op_at(&self, index: usize) -> &Op {
        &self.nodes[index].op
    }

    /// Shape of the value at tape position `index`.
    pub fn shape_at(&self, index: usize) -> &[usize] {
        self.nodes[index].value.shape()
    }

    /// Handle to the node at tape position `index` (panics when out of
    /// range). Lets external analyses walk the tape by index.
    pub fn var(&self, index: usize) -> Var {
        assert!(index < self.nodes.len(), "node index {index} out of range");
        Var(index)
    }

    /// Multiply–accumulate operations recorded so far (matmuls dominate;
    /// elementwise ops count one MAC per element).
    pub fn macs(&self) -> u64 {
        self.macs
    }

    /// Value computed at `v`.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    /// Shape of the value at `v`.
    pub fn shape(&self, v: Var) -> &[usize] {
        self.nodes[v.0].value.shape()
    }

    /// Number of nodes on the tape.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn push(&mut self, value: Tensor, op: Op) -> Var {
        // values may be strided views now; touching the last logical element
        // validates the view's bounds without requiring density
        #[cfg(debug_assertions)]
        if value.numel() > 0 {
            let last: Vec<usize> = value.shape().iter().map(|&d| d - 1).collect();
            let _ = value.at(&last);
        }
        if self.sanitize {
            self.sanitize_incoming(&value, &op);
        }
        self.nodes.push(Node { value, op });
        Var(self.nodes.len() - 1)
    }

    /// Sanitizer hook, run before the node is appended: flag the node if its
    /// value is non-finite, and report it when it is a fresh producer (no
    /// poisoned input) rather than a downstream propagation.
    fn sanitize_incoming(&mut self, value: &Tensor, op: &Op) {
        let inherited = op.inputs().iter().any(|v| self.poisoned[v.0]);
        let bad = value.has_non_finite();
        if bad && !inherited {
            self.reports.push(SanitizerReport {
                node: self.nodes.len(),
                op: op.name(),
                shape: value.shape().to_vec(),
                provenance: self.provenance_of(op),
            });
        }
        self.poisoned.push(bad || inherited);
    }

    /// Breadth-first ancestor walk used for sanitizer reports, nearest
    /// inputs first, depth- and size-limited to keep reports readable.
    fn provenance_of(&self, op: &Op) -> Vec<ProvenanceStep> {
        const MAX_DEPTH: usize = 3;
        const MAX_STEPS: usize = 12;
        let mut steps = Vec::new();
        let mut frontier: Vec<usize> = op.inputs().iter().map(|v| v.0).collect();
        let mut depth = 1usize;
        while !frontier.is_empty() && depth <= MAX_DEPTH && steps.len() < MAX_STEPS {
            let mut next = Vec::new();
            for idx in frontier {
                if steps.len() >= MAX_STEPS {
                    break;
                }
                let node = &self.nodes[idx];
                steps.push(ProvenanceStep {
                    node: idx,
                    op: node.op.name(),
                    shape: node.value.shape().to_vec(),
                    finite: !node.value.has_non_finite(),
                    depth,
                });
                next.extend(node.op.inputs().iter().map(|v| v.0));
            }
            frontier = next;
            depth += 1;
        }
        steps
    }

    // ------------------------------------------------------------- leaves

    /// Insert a constant (no gradient flows into it... it still receives one
    /// internally, which is simply discarded).
    pub fn constant(&mut self, t: Tensor) -> Var {
        self.push(t, Op::Leaf)
    }

    /// Insert a parameter leaf by id; the value is an O(1) clone of the
    /// store's current tensor.
    pub fn param(&mut self, id: ParamId) -> Var {
        let value = self.store.value(id).clone();
        self.push(value, Op::Param(id))
    }

    // -------------------------------------------------------- arithmetic

    /// Elementwise `a + b` with broadcasting.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let v = self.nodes[a.0].value.add(&self.nodes[b.0].value);
        self.macs += v.numel() as u64;
        self.push(v, Op::Add(a, b))
    }

    /// Elementwise `a - b` with broadcasting.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let v = self.nodes[a.0].value.sub(&self.nodes[b.0].value);
        self.macs += v.numel() as u64;
        self.push(v, Op::Sub(a, b))
    }

    /// Elementwise `a * b` with broadcasting.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let v = self.nodes[a.0].value.mul(&self.nodes[b.0].value);
        self.macs += v.numel() as u64;
        self.push(v, Op::Mul(a, b))
    }

    /// Elementwise `a / b` with broadcasting.
    pub fn div(&mut self, a: Var, b: Var) -> Var {
        let v = self.nodes[a.0].value.div(&self.nodes[b.0].value);
        self.macs += v.numel() as u64;
        self.push(v, Op::Div(a, b))
    }

    /// `a + s` for a scalar `s`.
    pub fn add_scalar(&mut self, a: Var, s: f32) -> Var {
        let v = self.nodes[a.0].value.add_scalar(s);
        self.push(v, Op::AddScalar(a))
    }

    /// `a * s` for a scalar `s`.
    pub fn mul_scalar(&mut self, a: Var, s: f32) -> Var {
        let v = self.nodes[a.0].value.mul_scalar(s);
        self.push(v, Op::MulScalar(a, s))
    }

    /// `-a`.
    pub fn neg(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.neg();
        self.push(v, Op::Neg(a))
    }

    /// Batched matrix product (see [`Tensor::matmul`] for broadcasting).
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let va = &self.nodes[a.0].value;
        let vb = &self.nodes[b.0].value;
        let v = va.matmul(vb);
        // MACs: product elements × inner dim
        let k = *va.shape().last().unwrap_or(&1);
        self.macs += (v.numel() * k) as u64;
        self.push(v, Op::MatMul(a, b))
    }

    // ------------------------------------------------------ shape surgery

    /// Reorder axes.
    pub fn permute(&mut self, a: Var, axes: &[usize]) -> Var {
        let v = self.nodes[a.0].value.permute(axes);
        self.push(v, Op::Permute(a, axes.to_vec()))
    }

    /// Swap two axes.
    pub fn transpose(&mut self, a: Var, d0: usize, d1: usize) -> Var {
        let mut axes: Vec<usize> = (0..self.nodes[a.0].value.rank()).collect();
        axes.swap(d0, d1);
        self.permute(a, &axes)
    }

    /// Reinterpret under a new shape.
    pub fn reshape(&mut self, a: Var, shape: &[usize]) -> Var {
        let v = self.nodes[a.0].value.reshape(shape);
        self.push(v, Op::Reshape(a, shape.to_vec()))
    }

    /// Materialize a broadcast.
    pub fn broadcast_to(&mut self, a: Var, shape: &[usize]) -> Var {
        let v = self.nodes[a.0].value.broadcast_to(shape);
        self.push(v, Op::BroadcastTo(a, shape.to_vec()))
    }

    /// Contiguous sub-range along an axis.
    pub fn slice_axis(&mut self, a: Var, axis: usize, start: usize, end: usize) -> Var {
        let v = self.nodes[a.0].value.slice_axis(axis, start, end);
        self.push(v, Op::SliceAxis(a, axis, start, end))
    }

    /// Zero-copy sliding windows along `axis`: the axis shrinks to the
    /// window count and a trailing `window` axis is appended (see
    /// [`Tensor::sliding_window`]). With `step < window` consecutive windows
    /// overlap — the overlapping-patch constructor used by patching.
    pub fn unfold(&mut self, a: Var, axis: usize, window: usize, step: usize) -> Var {
        let v = self.nodes[a.0].value.sliding_window(axis, window, step);
        self.push(v, Op::Unfold(a, axis, window, step))
    }

    /// Concatenate along an axis.
    pub fn concat(&mut self, parts: &[Var], axis: usize) -> Var {
        let tensors: Vec<&Tensor> = parts.iter().map(|p| &self.nodes[p.0].value).collect();
        let v = Tensor::concat(&tensors, axis);
        self.push(v, Op::Concat(parts.to_vec(), axis))
    }

    /// Embedding lookup: gather rows of `table` (axis 0) by index.
    pub fn gather_rows(&mut self, table: Var, indices: &[usize]) -> Var {
        let v = self.nodes[table.0].value.gather_rows(indices);
        self.push(v, Op::GatherRows(table, indices.to_vec()))
    }

    // ------------------------------------------------------- nonlinearity

    /// Softmax over the last axis.
    pub fn softmax(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.softmax_lastdim();
        self.macs += 4 * v.numel() as u64;
        self.push(v, Op::Softmax(a))
    }

    /// Log-softmax over the last axis.
    pub fn log_softmax(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.log_softmax_lastdim();
        self.macs += 4 * v.numel() as u64;
        self.push(v, Op::LogSoftmax(a))
    }

    /// ReLU.
    pub fn relu(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.relu();
        self.macs += v.numel() as u64;
        self.push(v, Op::Relu(a))
    }

    /// GELU (tanh approximation).
    pub fn gelu(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.gelu();
        self.macs += 8 * v.numel() as u64;
        self.push(v, Op::Gelu(a))
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.sigmoid();
        self.macs += 4 * v.numel() as u64;
        self.push(v, Op::Sigmoid(a))
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.tanh();
        self.macs += 4 * v.numel() as u64;
        self.push(v, Op::Tanh(a))
    }

    /// Elementwise square root.
    pub fn sqrt(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.sqrt();
        self.push(v, Op::Sqrt(a))
    }

    /// Elementwise exponent.
    pub fn exp(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.exp();
        self.push(v, Op::Exp(a))
    }

    /// Elementwise natural log.
    pub fn ln(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.ln();
        self.push(v, Op::Ln(a))
    }

    /// Elementwise square.
    pub fn square(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.square();
        self.macs += v.numel() as u64;
        self.push(v, Op::Square(a))
    }

    /// Elementwise absolute value.
    pub fn abs(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.abs();
        self.push(v, Op::Abs(a))
    }

    /// Apply a precomputed inverted-dropout mask (already scaled by
    /// `1/(1-p)`). The caller owns mask generation so seeds stay explicit.
    pub fn dropout_mask(&mut self, a: Var, mask: Tensor) -> Var {
        let v = self.nodes[a.0].value.mul(&mask);
        self.push(v, Op::Dropout(a, mask))
    }

    // --------------------------------------------------------- reductions

    /// Sum of all elements (scalar node).
    pub fn sum(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.sum();
        self.push(v, Op::Sum(a))
    }

    /// Mean of all elements (scalar node).
    pub fn mean(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.mean();
        self.push(v, Op::Mean(a))
    }

    /// Sum along `axis` (kept as size 1).
    pub fn sum_axis(&mut self, a: Var, axis: usize) -> Var {
        let v = self.nodes[a.0].value.sum_axis(axis);
        self.push(v, Op::SumAxis(a, axis))
    }

    /// Mean along `axis` (kept as size 1).
    pub fn mean_axis(&mut self, a: Var, axis: usize) -> Var {
        let v = self.nodes[a.0].value.mean_axis(axis);
        self.push(v, Op::MeanAxis(a, axis))
    }

    // -------------------------------------------------------------- losses

    /// Mean squared error (scalar node).
    pub fn mse_loss(&mut self, pred: Var, target: Var) -> Var {
        let vp = &self.nodes[pred.0].value;
        let vt = &self.nodes[target.0].value;
        assert_eq!(vp.shape(), vt.shape(), "mse_loss shape mismatch");
        let v = vp.sub(vt).square().mean();
        self.push(v, Op::MseLoss(pred, target))
    }

    /// Mean absolute error (scalar node).
    pub fn mae_loss(&mut self, pred: Var, target: Var) -> Var {
        let vp = &self.nodes[pred.0].value;
        let vt = &self.nodes[target.0].value;
        assert_eq!(vp.shape(), vt.shape(), "mae_loss shape mismatch");
        let v = vp.sub(vt).abs().mean();
        self.push(v, Op::MaeLoss(pred, target))
    }

    /// Smooth-L1 (Huber) loss with threshold `beta`, as in the paper's
    /// training objective (scalar node).
    pub fn smooth_l1_loss(&mut self, pred: Var, target: Var, beta: f32) -> Var {
        assert!(beta > 0.0, "smooth_l1 beta must be positive");
        let vp = &self.nodes[pred.0].value;
        let vt = &self.nodes[target.0].value;
        assert_eq!(vp.shape(), vt.shape(), "smooth_l1 shape mismatch");
        let per = vp.zip(vt, |a, b| {
            let e = (a - b).abs();
            if e < beta {
                0.5 * e * e / beta
            } else {
                e - 0.5 * beta
            }
        });
        self.push(per.mean(), Op::SmoothL1(pred, target, beta))
    }

    /// Mean cross-entropy of `[rows, classes]` logits against integer labels
    /// (scalar node). Used row-wise and column-wise for the paper's symmetric
    /// contrastive loss.
    pub fn cross_entropy_rows(&mut self, logits: Var, labels: &[usize]) -> Var {
        let vl = &self.nodes[logits.0].value;
        assert_eq!(vl.rank(), 2, "cross_entropy expects [rows, classes] logits");
        assert_eq!(vl.shape()[0], labels.len(), "one label per logits row");
        let ls = vl.log_softmax_lastdim();
        let width = vl.shape()[1];
        let nll: f32 = labels
            .iter()
            .enumerate()
            .map(|(row, &y)| {
                assert!(y < width, "label {y} out of {width} classes");
                -ls.data()[row * width + y]
            })
            .sum::<f32>()
            / labels.len() as f32;
        self.macs += 5 * vl.numel() as u64;
        self.push(Tensor::scalar(nll), Op::CrossEntropyRows(logits, labels.to_vec()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitizer_pinpoints_producer_with_provenance() {
        let store = ParamStore::new();
        let mut g = Graph::with_sanitizer(&store);
        let x = g.constant(Tensor::from_vec(vec![-1.0, 2.0], &[2]));
        let y = g.ln(x); // ln(-1) = NaN: the eruption site
        let _z = g.add(y, y); // inherits the poison, must not re-report
        let reports = g.sanitizer_reports();
        assert_eq!(reports.len(), 1, "one producer, one report");
        let r = &reports[0];
        assert_eq!(r.node, y.index());
        assert_eq!(r.op, "Ln");
        assert_eq!(r.shape, vec![2]);
        assert_eq!(r.provenance[0].node, x.index());
        assert_eq!(r.provenance[0].op, "Leaf");
        assert!(r.provenance[0].finite);
        assert_eq!(r.provenance[0].depth, 1);
    }

    #[test]
    fn sanitizer_clean_graph_reports_nothing() {
        let store = ParamStore::new();
        let mut g = Graph::with_sanitizer(&store);
        let x = g.constant(Tensor::ones(&[3]));
        let y = g.exp(x);
        let _ = g.mean(y);
        assert!(g.sanitizer_reports().is_empty());
    }

    #[test]
    fn sanitizer_off_by_default() {
        let store = ParamStore::new();
        let mut g = Graph::new(&store);
        assert!(!g.sanitizer_enabled());
        let x = g.constant(Tensor::from_vec(vec![-1.0], &[1]));
        let _ = g.ln(x);
        assert!(g.sanitizer_reports().is_empty());
    }

    #[test]
    fn reshape_records_target_shape() {
        let store = ParamStore::new();
        let mut g = Graph::new(&store);
        let x = g.constant(Tensor::ones(&[2, 3]));
        let y = g.reshape(x, &[3, 2]);
        match g.op(y) {
            Op::Reshape(_, target) => assert_eq!(target, &[3, 2]),
            other => panic!("expected Reshape, got {}", other.name()),
        }
    }
}
