//! Trainable-parameter storage shared between forward graphs and optimizers.

use lip_tensor::Tensor;

/// Opaque handle to a parameter inside a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(pub(crate) usize);

impl ParamId {
    /// Raw index (stable for the lifetime of the store).
    pub fn index(self) -> usize {
        self.0
    }
}

struct ParamEntry {
    name: String,
    value: Tensor,
    grad: Tensor,
    /// Frozen parameters keep their value but receive no updates — used when
    /// the pre-trained Covariate Encoder is attached to the Base Predictor.
    frozen: bool,
}

/// Owns every trainable tensor of a model: values, gradient accumulators and
/// freeze flags. Layers register parameters at construction time and refer to
/// them by [`ParamId`] during the forward pass.
#[derive(Default)]
pub struct ParamStore {
    entries: Vec<ParamEntry>,
}

impl ParamStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a parameter and return its handle.
    pub fn add(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        let grad = Tensor::zeros(value.shape());
        self.entries.push(ParamEntry {
            name: name.into(),
            value,
            grad,
            frozen: false,
        });
        ParamId(self.entries.len() - 1)
    }

    /// Number of registered parameter tensors.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total number of trainable scalars (the paper's "parameters" metric).
    pub fn num_scalars(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| !e.frozen)
            .map(|e| e.value.numel())
            .sum()
    }

    /// Total scalar count including frozen tensors.
    pub fn num_scalars_total(&self) -> usize {
        self.entries.iter().map(|e| e.value.numel()).sum()
    }

    /// Current value of a parameter.
    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.entries[id.0].value
    }

    /// Overwrite a parameter's value (used by optimizers and checkpoint load).
    pub fn set_value(&mut self, id: ParamId, value: Tensor) {
        assert_eq!(
            value.shape(),
            self.entries[id.0].value.shape(),
            "set_value shape mismatch for '{}'",
            self.entries[id.0].name
        );
        self.entries[id.0].value = value;
    }

    /// Accumulated gradient of a parameter.
    pub fn grad(&self, id: ParamId) -> &Tensor {
        &self.entries[id.0].grad
    }

    /// Registered name of a parameter.
    pub fn name(&self, id: ParamId) -> &str {
        &self.entries[id.0].name
    }

    /// Mark a parameter as frozen: it keeps its value, reports no trainable
    /// scalars, and optimizers skip it.
    pub fn freeze(&mut self, id: ParamId) {
        self.entries[id.0].frozen = true;
    }

    /// Freeze every currently registered parameter.
    pub fn freeze_all(&mut self) {
        for e in &mut self.entries {
            e.frozen = true;
        }
    }

    /// Whether a parameter is frozen.
    pub fn is_frozen(&self, id: ParamId) -> bool {
        self.entries[id.0].frozen
    }

    /// Reset every gradient accumulator to zero.
    pub fn zero_grad(&mut self) {
        for e in &mut self.entries {
            e.grad = Tensor::zeros(e.value.shape());
        }
    }

    /// Add `grad` into the accumulator of `id` (no-op for frozen params).
    pub fn accumulate_grad(&mut self, id: ParamId, grad: &Tensor) {
        let e = &mut self.entries[id.0];
        if e.frozen {
            return;
        }
        e.grad.add_assign_scaled(grad, 1.0);
    }

    /// Ids of all parameters, in registration order.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> + '_ {
        (0..self.entries.len()).map(ParamId)
    }

    /// Handle of the parameter registered at `index` (panics out of range).
    /// Registration order is stable, so `(store.len()` before … `after)`
    /// ranges identify a sub-module's parameters.
    pub fn id_at(&self, index: usize) -> ParamId {
        assert!(index < self.entries.len(), "param index {index} out of range");
        ParamId(index)
    }

    /// Ids of trainable (non-frozen) parameters.
    pub fn trainable_ids(&self) -> Vec<ParamId> {
        (0..self.entries.len())
            .filter(|&i| !self.entries[i].frozen)
            .map(ParamId)
            .collect()
    }

    /// Global L2 norm of all trainable gradients (for clipping).
    pub fn grad_l2_norm(&self) -> f32 {
        let sq: f32 = self
            .entries
            .iter()
            .filter(|e| !e.frozen)
            .flat_map(|e| e.grad.data().iter())
            .map(|&g| g * g)
            .sum();
        sq.sqrt()
    }

    /// Scale every trainable gradient by `factor` (for clipping).
    pub fn scale_grads(&mut self, factor: f32) {
        for e in &mut self.entries {
            if !e.frozen {
                e.grad = e.grad.mul_scalar(factor);
            }
        }
    }

    /// Snapshot all values (for early-stopping "best model" checkpoints).
    pub fn snapshot(&self) -> Vec<Tensor> {
        self.entries.iter().map(|e| e.value.clone()).collect()
    }

    /// Restore values from a [`ParamStore::snapshot`].
    pub fn restore(&mut self, snapshot: &[Tensor]) {
        assert_eq!(snapshot.len(), self.entries.len(), "snapshot size mismatch");
        for (e, v) in self.entries.iter_mut().zip(snapshot) {
            assert_eq!(e.value.shape(), v.shape(), "snapshot shape mismatch");
            e.value = v.clone();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_count() {
        let mut s = ParamStore::new();
        let a = s.add("w1", Tensor::zeros(&[3, 4]));
        let b = s.add("b1", Tensor::zeros(&[4]));
        assert_eq!(s.len(), 2);
        assert_eq!(s.num_scalars(), 16);
        assert_eq!(s.name(a), "w1");
        assert_eq!(s.value(b).shape(), &[4]);
    }

    #[test]
    fn freeze_excludes_from_counts_and_grads() {
        let mut s = ParamStore::new();
        let a = s.add("enc", Tensor::ones(&[2, 2]));
        s.freeze(a);
        assert_eq!(s.num_scalars(), 0);
        assert_eq!(s.num_scalars_total(), 4);
        s.accumulate_grad(a, &Tensor::ones(&[2, 2]));
        assert_eq!(s.grad(a).sum().item(), 0.0);
        assert!(s.trainable_ids().is_empty());
    }

    #[test]
    fn grad_accumulation_and_zeroing() {
        let mut s = ParamStore::new();
        let a = s.add("w", Tensor::zeros(&[2]));
        s.accumulate_grad(a, &Tensor::from_vec(vec![1.0, 2.0], &[2]));
        s.accumulate_grad(a, &Tensor::from_vec(vec![1.0, 2.0], &[2]));
        assert_eq!(s.grad(a).to_vec(), vec![2.0, 4.0]);
        assert!((s.grad_l2_norm() - 20.0f32.sqrt()).abs() < 1e-6);
        s.zero_grad();
        assert_eq!(s.grad(a).to_vec(), vec![0.0, 0.0]);
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut s = ParamStore::new();
        let a = s.add("w", Tensor::ones(&[2]));
        let snap = s.snapshot();
        s.set_value(a, Tensor::zeros(&[2]));
        s.restore(&snap);
        assert_eq!(s.value(a).to_vec(), vec![1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn set_value_rejects_wrong_shape() {
        let mut s = ParamStore::new();
        let a = s.add("w", Tensor::ones(&[2]));
        s.set_value(a, Tensor::ones(&[3]));
    }
}
