//! The operation set recorded on the tape, and each op's adjoint (backward)
//! rule. Every rule receives the upstream gradient plus the recorded input /
//! output values and returns a gradient contribution per input.

use lip_tensor::{gelu_grad_scalar, Tensor};

use crate::graph::Var;
use crate::ParamId;

/// A recorded forward operation. Inputs are earlier nodes on the tape, so
/// node order is already a topological order.
#[derive(Debug, Clone)]
pub enum Op {
    /// Constant leaf (inputs, targets, masks). Receives no gradient.
    Leaf,
    /// Trainable-parameter leaf.
    Param(ParamId),
    Add(Var, Var),
    Sub(Var, Var),
    Mul(Var, Var),
    Div(Var, Var),
    AddScalar(Var),
    MulScalar(Var, f32),
    Neg(Var),
    MatMul(Var, Var),
    Permute(Var, Vec<usize>),
    /// Reinterpretation under the recorded target shape.
    Reshape(Var, Vec<usize>),
    /// Materialized broadcast to the recorded target shape.
    BroadcastTo(Var, Vec<usize>),
    /// Softmax over the last axis.
    Softmax(Var),
    /// Log-softmax over the last axis.
    LogSoftmax(Var),
    Relu(Var),
    Gelu(Var),
    Sigmoid(Var),
    Tanh(Var),
    Sqrt(Var),
    Exp(Var),
    Ln(Var),
    Square(Var),
    Abs(Var),
    /// Multiply by a precomputed inverted-dropout mask (mask already carries
    /// the 1/(1-p) scale).
    Dropout(Var, Tensor),
    Sum(Var),
    Mean(Var),
    SumAxis(Var, usize),
    MeanAxis(Var, usize),
    Concat(Vec<Var>, usize),
    SliceAxis(Var, usize, usize, usize),
    /// Zero-copy sliding windows along `axis`: `(input, axis, window, step)`.
    /// The axis shrinks to the window count and a trailing `window` axis is
    /// appended ([`Tensor::sliding_window`] semantics). Windows overlap when
    /// `step < window`, so the adjoint scatter-**adds**.
    Unfold(Var, usize, usize, usize),
    /// Row gather along axis 0 (embedding lookup).
    GatherRows(Var, Vec<usize>),
    /// Mean squared error between prediction and target (scalar output).
    MseLoss(Var, Var),
    /// Mean absolute error (scalar output).
    MaeLoss(Var, Var),
    /// Smooth-L1 / Huber loss with threshold `beta` (scalar output).
    SmoothL1(Var, Var, f32),
    /// Mean cross-entropy of row-wise logits against integer labels.
    CrossEntropyRows(Var, Vec<usize>),
}

impl Op {
    /// Variant name, for diagnostics and the static analyzer's plan/parity
    /// comparisons.
    pub fn name(&self) -> &'static str {
        use Op::*;
        match self {
            Leaf => "Leaf",
            Param(_) => "Param",
            Add(..) => "Add",
            Sub(..) => "Sub",
            Mul(..) => "Mul",
            Div(..) => "Div",
            AddScalar(_) => "AddScalar",
            MulScalar(..) => "MulScalar",
            Neg(_) => "Neg",
            MatMul(..) => "MatMul",
            Permute(..) => "Permute",
            Reshape(..) => "Reshape",
            BroadcastTo(..) => "BroadcastTo",
            Softmax(_) => "Softmax",
            LogSoftmax(_) => "LogSoftmax",
            Relu(_) => "Relu",
            Gelu(_) => "Gelu",
            Sigmoid(_) => "Sigmoid",
            Tanh(_) => "Tanh",
            Sqrt(_) => "Sqrt",
            Exp(_) => "Exp",
            Ln(_) => "Ln",
            Square(_) => "Square",
            Abs(_) => "Abs",
            Dropout(..) => "Dropout",
            Sum(_) => "Sum",
            Mean(_) => "Mean",
            SumAxis(..) => "SumAxis",
            MeanAxis(..) => "MeanAxis",
            Concat(..) => "Concat",
            SliceAxis(..) => "SliceAxis",
            Unfold(..) => "Unfold",
            GatherRows(..) => "GatherRows",
            MseLoss(..) => "MseLoss",
            MaeLoss(..) => "MaeLoss",
            SmoothL1(..) => "SmoothL1",
            CrossEntropyRows(..) => "CrossEntropyRows",
        }
    }

    /// Input nodes of this op, in order.
    pub fn inputs(&self) -> Vec<Var> {
        use Op::*;
        match self {
            Leaf | Param(_) => vec![],
            Add(a, b) | Sub(a, b) | Mul(a, b) | Div(a, b) | MatMul(a, b) | MseLoss(a, b)
            | MaeLoss(a, b) => vec![*a, *b],
            SmoothL1(a, b, _) => vec![*a, *b],
            AddScalar(a) | MulScalar(a, _) | Neg(a) | Permute(a, _) | Reshape(a, _)
            | BroadcastTo(a, _) | Softmax(a) | LogSoftmax(a) | Relu(a) | Gelu(a) | Sigmoid(a)
            | Tanh(a) | Sqrt(a) | Exp(a) | Ln(a) | Square(a) | Abs(a) | Dropout(a, _)
            | Sum(a) | Mean(a) | SumAxis(a, _) | MeanAxis(a, _) | SliceAxis(a, _, _, _)
            | Unfold(a, _, _, _) | GatherRows(a, _) | CrossEntropyRows(a, _) => vec![*a],
            Concat(parts, _) => parts.clone(),
        }
    }

    /// Gradient contributions to each input given the upstream gradient
    /// `grad`, the input values (`value_of`) and this node's output `out`.
    pub fn backward(
        &self,
        grad: &Tensor,
        out: &Tensor,
        value_of: &dyn Fn(Var) -> Tensor,
    ) -> Vec<(Var, Tensor)> {
        use Op::*;
        match self {
            Leaf | Param(_) => vec![],

            Add(a, b) => {
                let va = value_of(*a);
                let vb = value_of(*b);
                vec![
                    (*a, grad.reduce_to_shape(va.shape())),
                    (*b, grad.reduce_to_shape(vb.shape())),
                ]
            }
            Sub(a, b) => {
                let va = value_of(*a);
                let vb = value_of(*b);
                vec![
                    (*a, grad.reduce_to_shape(va.shape())),
                    (*b, grad.neg().reduce_to_shape(vb.shape())),
                ]
            }
            Mul(a, b) => {
                let va = value_of(*a);
                let vb = value_of(*b);
                vec![
                    (*a, grad.mul(&vb).reduce_to_shape(va.shape())),
                    (*b, grad.mul(&va).reduce_to_shape(vb.shape())),
                ]
            }
            Div(a, b) => {
                let va = value_of(*a);
                let vb = value_of(*b);
                let da = grad.div(&vb).reduce_to_shape(va.shape());
                let db = grad
                    .mul(&va)
                    .div(&vb.square())
                    .neg()
                    .reduce_to_shape(vb.shape());
                vec![(*a, da), (*b, db)]
            }
            AddScalar(a) => vec![(*a, grad.clone())],
            MulScalar(a, s) => vec![(*a, grad.mul_scalar(*s))],
            Neg(a) => vec![(*a, grad.neg())],

            MatMul(a, b) => {
                let va = value_of(*a);
                let vb = value_of(*b);
                // Batched adjoints; reduce over broadcast batch axes.
                let (va2, vb2) = (promote_mat(&va), promote_mat(&vb));
                let g2 = promote_grad(grad, va.rank() == 1, vb.rank() == 1);
                let da = g2.matmul(&vb2.t()).reduce_to_shape(va2.shape());
                let db = va2.t().matmul(&g2).reduce_to_shape(vb2.shape());
                vec![
                    (*a, da.reshape(va.shape())),
                    (*b, db.reshape(vb.shape())),
                ]
            }

            Permute(a, axes) => {
                let mut inverse = vec![0usize; axes.len()];
                for (i, &ax) in axes.iter().enumerate() {
                    inverse[ax] = i;
                }
                vec![(*a, grad.permute(&inverse))]
            }
            Reshape(a, _) => {
                let va = value_of(*a);
                vec![(*a, grad.reshape(va.shape()))]
            }
            BroadcastTo(a, _) => {
                let va = value_of(*a);
                vec![(*a, grad.reduce_to_shape(va.shape()))]
            }

            Softmax(a) => {
                // ds = s ⊙ (g − Σ_j g_j s_j) per row
                let rank = out.rank();
                let dot = grad.mul(out).sum_axis(rank - 1);
                vec![(*a, out.mul(&grad.sub(&dot)))]
            }
            LogSoftmax(a) => {
                let va = value_of(*a);
                let rank = out.rank();
                let s = va.softmax_lastdim();
                let gsum = grad.sum_axis(rank - 1);
                vec![(*a, grad.sub(&s.mul(&gsum)))]
            }
            Relu(a) => {
                let va = value_of(*a);
                vec![(*a, grad.zip(&va, |g, x| if x > 0.0 { g } else { 0.0 }))]
            }
            Gelu(a) => {
                let va = value_of(*a);
                vec![(*a, grad.zip(&va, |g, x| g * gelu_grad_scalar(x)))]
            }
            Sigmoid(a) => vec![(*a, grad.zip(out, |g, s| g * s * (1.0 - s)))],
            Tanh(a) => vec![(*a, grad.zip(out, |g, t| g * (1.0 - t * t)))],
            Sqrt(a) => vec![(*a, grad.zip(out, |g, s| g * 0.5 / s))],
            Exp(a) => vec![(*a, grad.mul(out))],
            Ln(a) => {
                let va = value_of(*a);
                vec![(*a, grad.div(&va))]
            }
            Square(a) => {
                let va = value_of(*a);
                vec![(*a, grad.mul(&va).mul_scalar(2.0))]
            }
            Abs(a) => {
                let va = value_of(*a);
                vec![(*a, grad.zip(&va, |g, x| g * sign(x)))]
            }
            Dropout(a, mask) => vec![(*a, grad.mul(mask))],

            Sum(a) => {
                let va = value_of(*a);
                vec![(*a, Tensor::full(va.shape(), grad.item()))]
            }
            Mean(a) => {
                let va = value_of(*a);
                let scale = grad.item() / va.numel() as f32;
                vec![(*a, Tensor::full(va.shape(), scale))]
            }
            SumAxis(a, _) => {
                let va = value_of(*a);
                vec![(*a, grad.broadcast_to(va.shape()))]
            }
            MeanAxis(a, axis) => {
                let va = value_of(*a);
                let len = va.shape()[*axis] as f32;
                vec![(*a, grad.mul_scalar(1.0 / len).broadcast_to(va.shape()))]
            }

            Concat(parts, axis) => {
                let mut offset = 0usize;
                let mut grads = Vec::with_capacity(parts.len());
                for &p in parts {
                    let vp = value_of(p);
                    let width = vp.shape()[*axis];
                    grads.push((p, grad.slice_axis(*axis, offset, offset + width)));
                    offset += width;
                }
                grads
            }
            SliceAxis(a, axis, start, end) => {
                let va = value_of(*a);
                vec![(*a, scatter_slice(grad, va.shape(), *axis, *start, *end))]
            }
            Unfold(a, axis, window, step) => {
                let va = value_of(*a);
                vec![(*a, scatter_windows(grad, va.shape(), *axis, *window, *step))]
            }
            GatherRows(a, indices) => {
                let va = value_of(*a);
                let row = va.numel() / va.shape()[0];
                let mut acc = Tensor::zeros(va.shape());
                let g = grad.contiguous();
                {
                    let gd = g.data();
                    let dst = acc.data_mut();
                    for (pos, &idx) in indices.iter().enumerate() {
                        let src = &gd[pos * row..(pos + 1) * row];
                        let tgt = &mut dst[idx * row..(idx + 1) * row];
                        for (t, &s) in tgt.iter_mut().zip(src) {
                            *t += s;
                        }
                    }
                }
                vec![(*a, acc)]
            }

            MseLoss(p, t) => {
                let vp = value_of(*p);
                let vt = value_of(*t);
                let scale = 2.0 * grad.item() / vp.numel() as f32;
                let d = vp.sub(&vt).mul_scalar(scale);
                vec![(*p, d.clone()), (*t, d.neg())]
            }
            MaeLoss(p, t) => {
                let vp = value_of(*p);
                let vt = value_of(*t);
                let scale = grad.item() / vp.numel() as f32;
                let d = vp.zip(&vt, |a, b| sign(a - b) * scale);
                vec![(*p, d.clone()), (*t, d.neg())]
            }
            SmoothL1(p, t, beta) => {
                let vp = value_of(*p);
                let vt = value_of(*t);
                let scale = grad.item() / vp.numel() as f32;
                let beta = *beta;
                let d = vp.zip(&vt, |a, b| {
                    let e = a - b;
                    if e.abs() < beta {
                        e / beta * scale
                    } else {
                        sign(e) * scale
                    }
                });
                vec![(*p, d.clone()), (*t, d.neg())]
            }
            CrossEntropyRows(logits, labels) => {
                let vl = value_of(*logits);
                let b = labels.len() as f32;
                let mut d = vl.softmax_lastdim();
                let width = *vl.shape().last().expect("logits rank >= 1");
                {
                    let dm = d.data_mut();
                    for (row, &y) in labels.iter().enumerate() {
                        dm[row * width + y] -= 1.0;
                    }
                }
                vec![(*logits, d.mul_scalar(grad.item() / b))]
            }
        }
    }
}

#[inline]
fn sign(x: f32) -> f32 {
    if x > 0.0 {
        1.0
    } else if x < 0.0 {
        -1.0
    } else {
        0.0
    }
}

/// Embed `grad` (the gradient of a slice) into a zero tensor of the original
/// shape at `start..end` along `axis` — the adjoint of `slice_axis`.
/// `grad` may arrive as any view; the flat index arithmetic wants density.
fn scatter_slice(grad: &Tensor, shape: &[usize], axis: usize, start: usize, end: usize) -> Tensor {
    let (outer, len, inner) = lip_tensor::shape::split_at_axis(shape, axis);
    let width = end - start;
    let mut out = Tensor::zeros(shape);
    let g = grad.contiguous();
    {
        let gd = g.data();
        let dst = out.data_mut();
        for o in 0..outer {
            let src = &gd[o * width * inner..(o + 1) * width * inner];
            let base = o * len * inner + start * inner;
            dst[base..base + width * inner].copy_from_slice(src);
        }
    }
    out
}

/// Scatter-add the gradient of a [`Tensor::sliding_window`] view back into
/// the input shape — the adjoint of `Unfold`. Overlapping windows (`step <
/// window`) contribute additively to the shared input positions; the serial
/// window-major accumulation order keeps the result deterministic.
fn scatter_windows(
    grad: &Tensor,
    shape: &[usize],
    axis: usize,
    window: usize,
    step: usize,
) -> Tensor {
    let (outer, len, inner) = lip_tensor::shape::split_at_axis(shape, axis);
    let n = (len - window) / step + 1;
    let mut out = Tensor::zeros(shape);
    let g = grad.contiguous();
    {
        // grad is [outer.., n, inner.., window] row-major
        let gd = g.data();
        let dst = out.data_mut();
        let mut gi = 0usize;
        for o in 0..outer {
            for j in 0..n {
                for i in 0..inner {
                    for p in 0..window {
                        dst[(o * len + j * step + p) * inner + i] += gd[gi];
                        gi += 1;
                    }
                }
            }
        }
        debug_assert_eq!(gi, gd.len(), "unfold grad size mismatch");
    }
    out
}

/// View a 1-d operand as a matrix so matmul adjoints are uniform.
fn promote_mat(t: &Tensor) -> Tensor {
    if t.rank() == 1 {
        t.reshape(&[1, t.shape()[0]])
    } else {
        t.clone()
    }
}

/// Restore the axes [`Tensor::matmul`] squeezed for 1-d operands, so the
/// upstream grad is shaped `[batch.., m, n]` like the promoted product.
fn promote_grad(grad: &Tensor, lhs_was_vec: bool, rhs_was_vec: bool) -> Tensor {
    let mut shape = grad.shape().to_vec();
    if rhs_was_vec {
        shape.push(1); // restore the n axis
    }
    if lhs_was_vec {
        shape.insert(shape.len() - 1, 1); // restore the m axis
    }
    grad.reshape(&shape)
}
