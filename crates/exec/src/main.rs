//! `lip-exec` — the compiled-inference benchmark and parity gate.
//!
//! For each of the nine synthetic benchmarks: build the small LiPFormer for
//! its standard (48, 24) task, compile it once ([`lip_exec::compile_inference`]),
//! bind the arena at batch 32, and compare the executor's prediction bytes
//! against tape inference at one thread and at the full `lip-par` budget.
//! Any byte divergence — or an arena that fails to undercut the tape's peak
//! allocation — is a contract violation and the process exits non-zero.
//!
//! ```text
//! cargo run --release -p lip-exec [OUT.json]
//! ```
//!
//! The report (default `BENCH_exec.json`) lists median forward latency for
//! both engines, the speedup, the single arena allocation in bytes, and the
//! tape's peak allocation (every distinct storage buffer the recorded graph
//! retains) for the same forward pass.

use std::collections::HashMap;
use std::time::Instant;

use lip_autograd::Graph;
use lip_data::pipeline::prepare;
use lip_data::window::Batch;
use lip_data::{generate, DatasetName, GeneratorConfig};
use lip_exec::compile_inference;
use lip_rng::rngs::StdRng;
use lip_rng::SeedableRng;
use lipformer::{Forecaster, LiPFormer, LiPFormerConfig};

/// One dataset's executor-vs-tape measurements.
struct ExecRecord {
    dataset: String,
    batch: usize,
    threads: usize,
    tape_forward_s: f64,
    exec_forward_s: f64,
    speedup: f64,
    arena_bytes: usize,
    tape_peak_bytes: usize,
}

lip_serde::json_struct!(ExecRecord {
    dataset,
    batch,
    threads,
    tape_forward_s,
    exec_forward_s,
    speedup,
    arena_bytes,
    tape_peak_bytes,
});

/// Tape-engine forward pass: prediction bytes plus the tape's peak
/// allocation — the sum over every distinct storage buffer the graph's
/// nodes retain (views share storage and are counted once).
fn tape_forward(model: &LiPFormer, batch: &Batch) -> (Vec<u8>, usize) {
    let mut rng = StdRng::seed_from_u64(0);
    let mut g = Graph::new(model.store());
    let y = model.forward(&mut g, batch, false, &mut rng);
    let mut storages: HashMap<usize, usize> = HashMap::new();
    for i in 0..g.len() {
        let t = g.value(g.var(i));
        let elems = t.view_ref().data.len();
        let entry = storages.entry(t.storage_ptr()).or_insert(0);
        *entry = (*entry).max(elems);
    }
    let peak = storages.values().sum::<usize>() * std::mem::size_of::<f32>();
    (g.value(y).to_bytes(), peak)
}

fn median(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timing"));
    samples[samples.len() / 2]
}

/// Median of `reps` timed runs of `f` (one untimed warmup).
fn time_runs(mut f: impl FnMut(), reps: usize) -> f64 {
    f();
    median(
        (0..reps)
            .map(|_| {
                let started = Instant::now();
                f();
                started.elapsed().as_secs_f64()
            })
            .collect(),
    )
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_exec.json".to_string());
    let threads = lip_par::max_threads();
    let batch_size = 32usize;
    let reps = 5usize;
    println!(
        "lip-exec: nine-benchmark compiled-inference sweep, tape vs executor, \
         batch {batch_size}, {threads} thread(s)"
    );

    let mut records = Vec::new();
    let mut failed = false;
    for name in DatasetName::all() {
        let ds = generate(name, GeneratorConfig::test(3));
        let prep = prepare(&ds, 48, 24);
        let config = LiPFormerConfig::small(48, 24, prep.channels);
        let model = LiPFormer::new(config, &prep.spec, 7);
        let compiled = match compile_inference(&model, &prep.spec) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("{name:?}: COMPILE FAILED: {e}");
                std::process::exit(1);
            }
        };
        let indices: Vec<usize> = (0..batch_size.min(prep.train.len())).collect();
        let batch = prep.train.batch(&indices);
        let mut bound = compiled.bind(indices.len());

        let (tape_serial, tape_peak_bytes) = lip_par::with_threads(1, || tape_forward(&model, &batch));
        let exec_serial = lip_par::with_threads(1, || bound.run(&batch).to_bytes());
        let (tape_full, _) = lip_par::with_threads(threads, || tape_forward(&model, &batch));
        let exec_full = lip_par::with_threads(threads, || bound.run(&batch).to_bytes());
        if exec_serial != tape_serial || exec_full != tape_full || tape_serial != tape_full {
            eprintln!("{name:?}: EXECUTOR OUTPUT DIVERGES FROM TAPE — byte-parity contract broken");
            failed = true;
        }
        let arena_bytes = bound.arena_bytes();
        if arena_bytes >= tape_peak_bytes {
            eprintln!(
                "{name:?}: arena {arena_bytes} B does not undercut tape peak {tape_peak_bytes} B"
            );
            failed = true;
        }

        let tape_forward_s = lip_par::with_threads(threads, || {
            time_runs(
                || {
                    std::hint::black_box(tape_forward(&model, &batch).0.len());
                },
                reps,
            )
        });
        let exec_forward_s = lip_par::with_threads(threads, || {
            time_runs(
                || {
                    std::hint::black_box(bound.run(&batch).numel());
                },
                reps,
            )
        });
        let speedup = tape_forward_s / exec_forward_s;
        println!(
            "  {name:>13?}  tape {:>9.3} ms   exec {:>9.3} ms   ×{speedup:.2}   arena {:>8} B vs tape {:>9} B",
            tape_forward_s * 1e3,
            exec_forward_s * 1e3,
            arena_bytes,
            tape_peak_bytes
        );
        records.push(ExecRecord {
            dataset: format!("{name:?}"),
            batch: indices.len(),
            threads,
            tape_forward_s,
            exec_forward_s,
            speedup,
            arena_bytes,
            tape_peak_bytes,
        });
    }

    // Stage-composition smoke: every registered composition must compile
    // and stay byte-identical to tape at one thread and at the full budget.
    // Parity-only (no timing records): the JSON schema stays the nine
    // benchmarks the perf gate diffs against.
    for (label, stages) in lipformer::registered_compositions() {
        let config = LiPFormerConfig::small(48, 24, 3).with_stages(stages);
        let spec = lip_data::CovariateSpec {
            numerical: 0,
            cardinalities: vec![],
            time_features: 4,
        };
        let model = LiPFormer::new(config.clone(), &spec, 7);
        let compiled = match compile_inference(&model, &spec) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("stages/{label}: COMPILE FAILED: {e}");
                std::process::exit(1);
            }
        };
        let batch = lip_analyze::synthetic_batch(&config, &spec, 8);
        let mut bound = compiled.bind(8);
        let (tape_serial, _) = lip_par::with_threads(1, || tape_forward(&model, &batch));
        let exec_serial = lip_par::with_threads(1, || bound.run(&batch).to_bytes());
        let exec_full = lip_par::with_threads(threads, || bound.run(&batch).to_bytes());
        if exec_serial != tape_serial || exec_full != tape_serial {
            eprintln!("stages/{label}: EXECUTOR OUTPUT DIVERGES FROM TAPE");
            failed = true;
        } else {
            println!("  stages/{label:<15} byte-identical to tape (1 and {threads} threads)");
        }
    }

    let json = lip_serde::to_string_pretty(&records);
    std::fs::write(&out_path, json).unwrap_or_else(|e| {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(2);
    });
    println!("compiled-inference baseline → {out_path}");

    if failed {
        eprintln!("FAILED: executor parity or arena contract violated");
        std::process::exit(1);
    }
}
