//! Compilation: symbolic plan → verified, parameter-laden [`CompiledModel`].
//!
//! Compilation is *checked*: before a plan is trusted, it is replayed
//! against a tape actually recorded from the model being compiled (one
//! synthetic batch at `B = 2`) and compared node-for-node — op names,
//! concrete shapes, operand wiring, and the compile-time attributes the
//! executor will apply (scalars bit-for-bit, permute axes, slice bounds,
//! gather indices). Any disagreement aborts compilation instead of
//! producing an executor that silently diverges from the tape.

use lip_analyze::{
    eval_shape, plan_forward_loss, synthetic_batch, verify_schedule, InferenceSchedule, NodeAttr,
    PlanError, Storage,
};
use lip_autograd::Op;
use lip_data::CovariateSpec;
use lipformer::analysis::record_forward_loss;
use lipformer::{LiPFormer, LiPFormerConfig};

/// Why a model could not be compiled.
#[derive(Debug)]
pub enum CompileError {
    /// The symbolic planner or scheduler rejected the configuration.
    Plan(PlanError),
    /// The model or plan uses something the executor cannot lower.
    Unsupported(String),
    /// The plan disagreed with a tape recorded from the same model.
    Parity(String),
    /// The static verifier (`lip_analyze::verify_schedule`) found the
    /// schedule unsound — each string is one `[class] message` finding.
    Invariant(Vec<String>),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Plan(e) => write!(f, "compile: {e}"),
            CompileError::Unsupported(m) => write!(f, "compile: unsupported: {m}"),
            CompileError::Parity(m) => write!(f, "compile: plan/tape parity: {m}"),
            CompileError::Invariant(findings) => {
                write!(f, "compile: schedule failed static verification: {}", findings.join("; "))
            }
        }
    }
}

impl std::error::Error for CompileError {}

impl From<PlanError> for CompileError {
    fn from(e: PlanError) -> Self {
        CompileError::Plan(e)
    }
}

/// Ops the executor can lower. Everything the inference schedule can emit
/// must appear here; anything else is rejected at compile time, not at run
/// time.
const SUPPORTED: &[&str] = &[
    "Leaf", "Param", "Add", "Sub", "Mul", "Div", "AddScalar", "MulScalar", "Neg", "MatMul",
    "Permute", "Reshape", "SliceAxis", "Concat", "GatherRows", "Softmax", "LogSoftmax", "Relu",
    "Gelu", "Sigmoid", "Tanh", "Sqrt", "Exp", "Ln", "Square", "Abs", "SumAxis", "MeanAxis",
];

/// A verified inference program plus the parameter data it closes over.
/// Shapes stay symbolic in the batch size: call [`CompiledModel::bind`] to
/// lay out the arena for a concrete `B`.
pub struct CompiledModel {
    pub(crate) schedule: InferenceSchedule,
    /// Parameter segment of the arena, packed in step order.
    pub(crate) params: Vec<f32>,
    /// Element span of each parameter in the packed segment.
    pub(crate) param_ranges: Vec<(usize, usize)>,
    /// Whether the covariate leaf reads explicit covariates or implicit
    /// temporal features at run time (`WeakEnriching::covariate_input`).
    pub(crate) explicit: bool,
    config: LiPFormerConfig,
}

impl CompiledModel {
    /// The configuration this program was compiled from.
    pub fn config(&self) -> &LiPFormerConfig {
        &self.config
    }

    /// The liveness schedule driving the arena layout.
    pub fn schedule(&self) -> &InferenceSchedule {
        &self.schedule
    }

    /// Elements in the packed parameter segment.
    pub fn param_elems(&self) -> usize {
        self.params.len()
    }
}

fn check_attrs(
    i: usize,
    op: &Op,
    attr: &NodeAttr,
    batch_categorical: Option<&Vec<Vec<usize>>>,
    gather_channel: &mut usize,
) -> Result<(), CompileError> {
    let parity = |m: String| Err(CompileError::Parity(format!("node {i}: {m}")));
    match (op, attr) {
        // the runtime Op drops AddScalar's immediate; the plan is the
        // authoritative carrier, so there is nothing to cross-check
        (Op::AddScalar(_), NodeAttr::Scalar(_)) => {}
        (Op::MulScalar(_, s), NodeAttr::Scalar(p))
            if s.to_bits() != p.to_bits() => {
                return parity(format!("MulScalar planned {p} but recorded {s}"));
            }
        (Op::Permute(_, axes), NodeAttr::Axes(p))
            if axes != p => {
                return parity(format!("Permute planned {p:?} but recorded {axes:?}"));
            }
        (Op::SliceAxis(_, ax, s, e), NodeAttr::Slice { axis, start, end })
            if (ax, s, e) != (axis, start, end) => {
                return parity(format!(
                    "SliceAxis planned ({axis}, {start}, {end}) but recorded ({ax}, {s}, {e})"
                ));
            }
        (Op::Concat(_, ax), NodeAttr::Axis(a)) | (Op::SumAxis(_, ax), NodeAttr::Axis(a))
        | (Op::MeanAxis(_, ax), NodeAttr::Axis(a))
            if ax != a => {
                return parity(format!("{} planned axis {a} but recorded {ax}", op.name()));
            }
        (Op::GatherRows(_, indices), _) => {
            // the executor will feed batch.cov_categorical[channel] — the
            // recorded tape must have gathered with exactly those indices
            let expected = batch_categorical
                .and_then(|chans| chans.get(*gather_channel))
                .ok_or_else(|| {
                    CompileError::Parity(format!(
                        "node {i}: GatherRows channel {gather_channel} has no categorical input"
                    ))
                })?;
            if indices != expected {
                return parity(format!("GatherRows channel {gather_channel} index mismatch"));
            }
            *gather_channel += 1;
        }
        _ => {}
    }
    Ok(())
}

/// Compile `model` for tapeless inference under `spec` (the same covariate
/// spec the model was constructed with). Elementwise chains are fused (see
/// `lip_analyze::schedule`); use [`compile_inference_unfused`] to get the
/// one-pass-per-op program for differential testing.
pub fn compile_inference(
    model: &LiPFormer,
    spec: &CovariateSpec,
) -> Result<CompiledModel, CompileError> {
    compile_with(model, spec, true)
}

/// [`compile_inference`] with elementwise fusion disabled — every scheduled
/// op runs as its own arena pass. Exists so tests can prove fused execution
/// byte-identical to the unfused program.
pub fn compile_inference_unfused(
    model: &LiPFormer,
    spec: &CovariateSpec,
) -> Result<CompiledModel, CompileError> {
    compile_with(model, spec, false)
}

fn compile_with(
    model: &LiPFormer,
    spec: &CovariateSpec,
    fuse: bool,
) -> Result<CompiledModel, CompileError> {
    if !model.has_enriching() {
        return Err(CompileError::Unsupported(
            "model has no enriching module; the plan always includes the covariate guide".into(),
        ));
    }
    let config = model.config().clone();
    let plan = plan_forward_loss(&config, spec, false)?;
    let schedule = if fuse {
        InferenceSchedule::build(&plan)?
    } else {
        InferenceSchedule::build_unfused(&plan)?
    };

    // Static verification: prove def-before-use, slot liveness, symbolic
    // arena bounds (all B >= 1), and fusion legality before trusting the
    // schedule with an arena. A bad scheduler change is a typed error here,
    // not a runtime abort in lip-serve.
    let findings = verify_schedule(&plan, &schedule);
    if !findings.is_empty() {
        return Err(CompileError::Invariant(
            findings.iter().map(|f| f.to_string()).collect(),
        ));
    }

    for step in &schedule.steps {
        if !SUPPORTED.contains(&step.op) {
            return Err(CompileError::Unsupported(format!(
                "op {} at node {} has no executor lowering",
                step.op, step.node
            )));
        }
        for f in &step.fused {
            if !SUPPORTED.contains(&f.op) {
                return Err(CompileError::Unsupported(format!(
                    "fused stage {} at node {} has no executor lowering",
                    f.op, f.node
                )));
            }
        }
        if step.op == "Leaf" {
            match step.attr {
                NodeAttr::Label("x") | NodeAttr::Label("covariate") => {}
                ref other => {
                    return Err(CompileError::Unsupported(format!(
                        "leaf at node {} has no runtime source ({other:?})",
                        step.node
                    )));
                }
            }
        }
    }

    // Oracle parity: record a real tape from this very model at B = 2 and
    // require the plan to match it node-for-node before trusting it.
    const B: usize = 2;
    let batch = synthetic_batch(&config, spec, B);
    let (g, pred, _loss) = record_forward_loss(model, &batch, config.smooth_l1_beta, false, 0);
    let tape = &plan.tape;
    if tape.len() != g.len() {
        return Err(CompileError::Parity(format!(
            "plan has {} nodes but the tape recorded {}",
            tape.len(),
            g.len()
        )));
    }
    if plan.pred.0 != pred.index() {
        return Err(CompileError::Parity(format!(
            "plan pred is node {} but the tape's is {}",
            plan.pred.0,
            pred.index()
        )));
    }
    let mut gather_channel = 0usize;
    for (i, node) in tape.nodes().iter().enumerate() {
        let op = g.op_at(i);
        if node.op != op.name() {
            return Err(CompileError::Parity(format!(
                "node {i} planned as {} but recorded as {}",
                node.op,
                op.name()
            )));
        }
        let planned = eval_shape(&node.shape, B);
        if planned != g.shape_at(i) {
            return Err(CompileError::Parity(format!(
                "node {i} ({}) planned shape {planned:?} but recorded {:?}",
                node.op,
                g.shape_at(i)
            )));
        }
        let wired: Vec<usize> = op.inputs().iter().map(|v| v.index()).collect();
        let planned_in: Vec<usize> = node.inputs.iter().map(|v| v.0).collect();
        if wired != planned_in {
            return Err(CompileError::Parity(format!(
                "node {i} ({}) planned inputs {planned_in:?} but recorded {wired:?}",
                node.op
            )));
        }
        check_attrs(i, op, &node.attr, batch.cov_categorical.as_ref(), &mut gather_channel)?;
    }

    // Parameters, packed in step (= tape) order: the verified tape holds the
    // live values of exactly the parameters the schedule references.
    let mut params = Vec::new();
    let mut param_ranges = Vec::with_capacity(schedule.params);
    for step in &schedule.steps {
        if let Storage::Param(k) = step.storage {
            if k != param_ranges.len() {
                return Err(CompileError::Invariant(vec![format!(
                    "[arena-bounds] parameter {k} packed out of step order (expected {})",
                    param_ranges.len()
                )]));
            }
            let value = g.value(g.var(step.node)).contiguous();
            let start = params.len();
            params.extend_from_slice(value.data());
            param_ranges.push((start, params.len()));
        }
    }

    Ok(CompiledModel {
        schedule,
        params,
        param_ranges,
        explicit: spec.has_explicit(),
        config,
    })
}
