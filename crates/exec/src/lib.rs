//! # lip-exec
//!
//! A plan-compiled inference executor for LiPFormer: compile the symbolic
//! forward plan (`lip-analyze`) once, then run forward passes with **zero
//! tape construction and zero refcount traffic** — every intermediate lives
//! in one flat `Vec<f32>` arena whose layout is derived from the schedule's
//! liveness analysis.
//!
//! The pipeline is:
//!
//! 1. [`compile_inference`] — plan the forward graph symbolically, schedule
//!    it (DCE, liveness, slot pooling), verify the plan node-for-node
//!    against a *recorded* tape of the very model being compiled, and pack
//!    the model's parameters into the arena's parameter segment. The result
//!    is a [`CompiledModel`] whose shapes are affine in the batch size `B`:
//!    one compilation serves every `B`.
//! 2. [`CompiledModel::bind`] — evaluate the symbolic arena layout at a
//!    concrete `B`: size the single allocation, resolve every step's views,
//!    strides, scratch packing and liveness spans into a [`BoundModel`].
//! 3. [`BoundModel::run`] — execute the step list against a batch. Kernels
//!    are the *same* `lip_tensor::kernel` entry points the tape uses, so
//!    outputs are byte-identical to `Graph`-recorded inference at any
//!    `lip-par` thread budget (the differential tests enforce this).
//!
//! The arena-safety contract — a buffer is never read after the schedule
//! declares it dead — is tested by poisoning dead slots after every step
//! ([`BoundModel::run_with_poison`]) and asserting unchanged output bytes.
//!
//! ## Elementwise fusion
//!
//! The scheduler folds single-consumer elementwise chains (attention's
//! `MatMul → MulScalar` scale, FFN `MatMul → … → Relu` tails, …) into their
//! head op; the executor applies the fused stages per element at store time
//! with the exact per-element expressions separate passes would have used,
//! so fusion changes pass count and arena size but never output bytes.
//! [`compile_inference_unfused`] compiles with fusion off so differential
//! tests can prove that equality (`tests/fusion.rs`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compile;
pub mod run;

pub use compile::{compile_inference, compile_inference_unfused, CompileError, CompiledModel};
pub use run::BoundModel;
