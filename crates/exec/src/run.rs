//! Arena execution: bind a [`CompiledModel`] to a concrete batch size and
//! run forward passes with one flat allocation and no tape.
//!
//! The arena is `[ params | pooled slots | per-step scratch ]`:
//!
//! * the **parameter segment** is written once at bind time and never freed;
//! * each **slot** is sized to the max over every owner the scheduler pooled
//!   into it (`slot_sizes` candidates evaluated at `B`);
//! * **scratch** is the max over steps of what that one step needs to pack
//!   non-contiguous operands for kernels requiring dense input. The tiled
//!   matmul reads its lhs through arbitrary strides and its rhs through any
//!   row-dense layout, so only a rhs with non-unit row stride (the
//!   attention K-transpose) still packs; softmax / reductions / concat pack
//!   as before. Packing gathers in logical order, so when it happens the
//!   bytes equal the tape's `contiguous()` copy.
//!
//! Every step writes through `write_out`, which splits the arena into
//! `left | output | right` disjoint borrows. The scheduler guarantees an
//! output slot is never also an operand of its own step (allocation happens
//! before frees), so the split never panics — [`BoundModel::assert_no_aliasing`]
//! re-checks that invariant over the bound ranges.
//!
//! Kernels are the exact `lip_tensor::kernel` entry points `Graph` recording
//! uses, with the same per-element expressions (`v * s`, `a + b`, …), so a
//! bound run is byte-identical to tape inference at any thread budget.
//!
//! Fused steps (see `lip_analyze::schedule`) carry a `post: Vec<MapFn>`
//! chain applied per element at store time — `apply_post` threads the value
//! through the same scalar expressions the separate passes would have used,
//! preserving byte parity while eliminating whole-tensor round trips.

use lip_analyze::{eval_shape, NodeAttr, Storage};
use lip_data::window::Batch;
use lip_tensor::kernel::{self, ViewRef};
use lip_tensor::shape::{contiguous_strides, is_row_major, numel, view_strides};
use lip_tensor::{gelu_scalar, Tensor};

use crate::compile::CompiledModel;

/// A half-open element span `[start, end)` in the arena.
type Span = (usize, usize);

/// A resolved operand: concrete shape and strides plus its absolute offset
/// and owning storage span in the arena. `range` is what liveness and the
/// split-borrow reason about; `offset` is where logical element 0 lives.
#[derive(Debug, Clone)]
struct Desc {
    shape: Vec<usize>,
    strides: Vec<usize>,
    offset: usize,
    range: Span,
}

impl Desc {
    fn dense(shape: Vec<usize>, start: usize) -> Desc {
        let n = numel(&shape);
        Desc {
            strides: contiguous_strides(&shape),
            offset: start,
            range: (start, start + n),
            shape,
        }
    }

    fn is_contiguous(&self) -> bool {
        is_row_major(&self.shape, &self.strides)
    }

    /// Are the innermost rows unit-stride (what the tiled matmul kernel
    /// needs from its rhs)? Mirrors `kernel::matmul_rows_dense`.
    fn rows_dense(&self) -> bool {
        let r = self.shape.len();
        r >= 2 && (self.shape[r - 1] <= 1 || self.strides[r - 1] == 1)
    }
}

/// An operand of a kernel that requires dense row-major input. When `src`
/// is already contiguous, `dense == src`; otherwise `dense` names a scratch
/// span the step packs (logical-order gather) before computing.
#[derive(Debug, Clone)]
struct PackedOperand {
    src: Desc,
    dense: Desc,
    packed: bool,
}

#[derive(Debug, Clone, Copy)]
enum MapFn {
    AddScalar(f32),
    MulScalar(f32),
    Neg,
    Relu,
    Gelu,
    Sigmoid,
    Tanh,
    Sqrt,
    Exp,
    Ln,
    Square,
    Abs,
}

impl MapFn {
    /// Lower a scheduled elementwise op (a map head or a fused stage) to
    /// its executor function. The per-element expressions live in
    /// [`apply_map`] / [`run_map`].
    fn from_stage(op: &str, attr: &NodeAttr) -> MapFn {
        match (op, attr) {
            ("AddScalar", NodeAttr::Scalar(s)) => MapFn::AddScalar(*s),
            ("MulScalar", NodeAttr::Scalar(s)) => MapFn::MulScalar(*s),
            ("Neg", _) => MapFn::Neg,
            ("Relu", _) => MapFn::Relu,
            ("Gelu", _) => MapFn::Gelu,
            ("Sigmoid", _) => MapFn::Sigmoid,
            ("Tanh", _) => MapFn::Tanh,
            ("Sqrt", _) => MapFn::Sqrt,
            ("Exp", _) => MapFn::Exp,
            ("Ln", _) => MapFn::Ln,
            ("Square", _) => MapFn::Square,
            ("Abs", _) => MapFn::Abs,
            (op, attr) => panic!("{op} with attr {attr:?} is not an elementwise stage"),
        }
    }
}

/// One elementwise stage, exactly as the tape's separate pass would compute
/// it (`run_map` uses the same expressions) — fused chains apply these per
/// element at store time, so fused bytes equal unfused bytes.
fn apply_map(f: MapFn, v: f32) -> f32 {
    match f {
        MapFn::AddScalar(s) => v + s,
        MapFn::MulScalar(s) => v * s,
        MapFn::Neg => -v,
        MapFn::Relu => v.max(0.0),
        MapFn::Gelu => gelu_scalar(v),
        MapFn::Sigmoid => 1.0 / (1.0 + (-v).exp()),
        MapFn::Tanh => v.tanh(),
        MapFn::Sqrt => v.sqrt(),
        MapFn::Exp => v.exp(),
        MapFn::Ln => v.ln(),
        MapFn::Square => v * v,
        MapFn::Abs => v.abs(),
    }
}

/// Thread `v` through a fused stage chain in order.
fn apply_post(mut v: f32, post: &[MapFn]) -> f32 {
    for &f in post {
        v = apply_map(f, v);
    }
    v
}

#[derive(Debug, Clone, Copy)]
enum ZipFn {
    Add,
    Sub,
    Mul,
    Div,
}

#[derive(Debug)]
enum BoundStep {
    /// Views, params: resolved entirely at bind time.
    Nop,
    LoadX { dst: Desc },
    LoadCovariate { dst: Desc },
    /// A `Reshape` whose input strides do not admit the target shape.
    Materialize { src: Desc, dst: Desc },
    Map { src: Desc, f: MapFn, post: Vec<MapFn>, dst: Desc },
    Zip { a: Desc, b: Desc, f: ZipFn, post: Vec<MapFn>, dst: Desc },
    /// `a` is read through its strides (never packed); `b` packs into
    /// scratch only when its rows are not unit-stride. `post` is the fused
    /// elementwise chain applied per element at store time.
    MatMul { a: Desc, b: PackedOperand, post: Vec<MapFn>, dst: Desc },
    Softmax { src: PackedOperand, width: usize, log: bool, dst: Desc },
    Reduce { src: PackedOperand, axis: usize, mean_scale: Option<f32>, dst: Desc },
    Concat { parts: Vec<PackedOperand>, axis: usize, outer: usize, inner: usize, dst: Desc },
    GatherRows { table: Desc, channel: usize, dst: Desc },
}

struct Exec {
    step: BoundStep,
    /// Full physical spans of slots dead after this step (poison targets).
    dies: Vec<(usize, usize)>,
}

/// A [`CompiledModel`] laid out for one concrete batch size: the arena is
/// allocated, every operand's offset and strides are resolved, and
/// [`BoundModel::run`] is a straight walk over the step list.
pub struct BoundModel {
    arena: Vec<f32>,
    steps: Vec<Exec>,
    pred: Desc,
    params_end: usize,
    /// End of the pooled-slot segment (scratch begins here). The shadow
    /// checker uses it to tell slot writes (allocation events, must hit
    /// non-live storage) from scratch writes (freely reused every step).
    #[cfg_attr(not(any(debug_assertions, feature = "shadow-writes")), allow(dead_code))]
    slots_end: usize,
    explicit: bool,
    batch_size: usize,
}

impl CompiledModel {
    /// Evaluate the symbolic arena layout at batch size `b` and allocate it.
    pub fn bind(&self, b: usize) -> BoundModel {
        assert!(b > 0, "batch size must be positive");
        let sched = &self.schedule;
        let params_end = self.params.len();

        let mut slot_span = Vec::with_capacity(sched.slot_sizes.len());
        let mut cur = params_end;
        for cands in &sched.slot_sizes {
            let size = cands.iter().map(|d| d.eval(b)).max().unwrap_or(0);
            slot_span.push((cur, cur + size));
            cur += size;
        }
        let slots_end = cur;
        let mut scratch_peak = 0usize;

        let mut descs: Vec<Option<Desc>> = vec![None; sched.pred + 1];
        let mut steps = Vec::with_capacity(sched.steps.len());
        let mut gather_channel = 0usize;

        for step in &sched.steps {
            let shape = eval_shape(&step.shape, b);
            let inputs: Vec<Desc> = step
                .inputs
                .iter()
                .map(|&i| descs[i].clone().expect("input scheduled before use"))
                .collect();
            let post: Vec<MapFn> =
                step.fused.iter().map(|f| MapFn::from_stage(f.op, &f.attr)).collect();
            let slot_start = || match step.storage {
                Storage::Slot(id) | Storage::ViewOrSlot(id) => slot_span[id].0,
                ref other => panic!("op {} stored as {other:?} owns no slot", step.op),
            };
            let mut scratch = slots_end;
            let mut pack = |d: &Desc| -> PackedOperand {
                if d.is_contiguous() {
                    PackedOperand { src: d.clone(), dense: d.clone(), packed: false }
                } else {
                    let dense = Desc::dense(d.shape.clone(), scratch);
                    scratch = dense.range.1;
                    PackedOperand { src: d.clone(), dense, packed: true }
                }
            };

            let (desc, bound) = match step.op {
                "Param" => {
                    let k = match step.storage {
                        Storage::Param(k) => k,
                        ref other => panic!("Param stored as {other:?}"),
                    };
                    let (start, end) = self.param_ranges[k];
                    debug_assert_eq!(end - start, numel(&shape));
                    (Desc::dense(shape, start), BoundStep::Nop)
                }
                "Leaf" => {
                    let dst = Desc::dense(shape, slot_start());
                    let load = match step.attr {
                        NodeAttr::Label("x") => BoundStep::LoadX { dst: dst.clone() },
                        NodeAttr::Label("covariate") => {
                            BoundStep::LoadCovariate { dst: dst.clone() }
                        }
                        ref other => panic!("leaf with no runtime source: {other:?}"),
                    };
                    (dst, load)
                }
                "Permute" => {
                    let axes = match &step.attr {
                        NodeAttr::Axes(a) => a,
                        other => panic!("Permute without axes: {other:?}"),
                    };
                    let src = &inputs[0];
                    let strides: Vec<usize> = axes.iter().map(|&a| src.strides[a]).collect();
                    debug_assert_eq!(
                        shape,
                        axes.iter().map(|&a| src.shape[a]).collect::<Vec<_>>()
                    );
                    let d = Desc { shape, strides, offset: src.offset, range: src.range };
                    (d, BoundStep::Nop)
                }
                "SliceAxis" => {
                    let (axis, start) = match step.attr {
                        NodeAttr::Slice { axis, start, .. } => (axis, start),
                        ref other => panic!("SliceAxis without range: {other:?}"),
                    };
                    let src = &inputs[0];
                    let d = Desc {
                        shape,
                        strides: src.strides.clone(),
                        offset: src.offset + start * src.strides[axis],
                        range: src.range,
                    };
                    (d, BoundStep::Nop)
                }
                "Reshape" => {
                    let src = &inputs[0];
                    match view_strides(&src.shape, &src.strides, &shape) {
                        Some(strides) => {
                            let d = Desc {
                                shape,
                                strides,
                                offset: src.offset,
                                range: src.range,
                            };
                            (d, BoundStep::Nop)
                        }
                        None => {
                            let dst = Desc::dense(shape, slot_start());
                            (dst.clone(), BoundStep::Materialize { src: src.clone(), dst })
                        }
                    }
                }
                "AddScalar" | "MulScalar" | "Neg" | "Relu" | "Gelu" | "Sigmoid" | "Tanh"
                | "Sqrt" | "Exp" | "Ln" | "Square" | "Abs" => {
                    let f = MapFn::from_stage(step.op, &step.attr);
                    let dst = Desc::dense(shape, slot_start());
                    (dst.clone(), BoundStep::Map { src: inputs[0].clone(), f, post, dst })
                }
                "Add" | "Sub" | "Mul" | "Div" => {
                    let f = match step.op {
                        "Add" => ZipFn::Add,
                        "Sub" => ZipFn::Sub,
                        "Mul" => ZipFn::Mul,
                        _ => ZipFn::Div,
                    };
                    let dst = Desc::dense(shape, slot_start());
                    let bound = BoundStep::Zip {
                        a: inputs[0].clone(),
                        b: inputs[1].clone(),
                        f,
                        post,
                        dst: dst.clone(),
                    };
                    (dst, bound)
                }
                "MatMul" => {
                    // the tiled kernel reads the lhs through its strides;
                    // the rhs packs only when its rows are not unit-stride
                    // (the attention K-transpose) — everything else is read
                    // in place
                    let a = inputs[0].clone();
                    let b = if inputs[1].rows_dense() {
                        PackedOperand {
                            src: inputs[1].clone(),
                            dense: inputs[1].clone(),
                            packed: false,
                        }
                    } else {
                        pack(&inputs[1])
                    };
                    let dst = Desc::dense(shape, slot_start());
                    (dst.clone(), BoundStep::MatMul { a, b, post, dst })
                }
                "Softmax" | "LogSoftmax" => {
                    let src = pack(&inputs[0]);
                    let width = *shape.last().expect("softmax on a scalar");
                    let dst = Desc::dense(shape, slot_start());
                    let bound = BoundStep::Softmax {
                        src,
                        width,
                        log: step.op == "LogSoftmax",
                        dst: dst.clone(),
                    };
                    (dst, bound)
                }
                "SumAxis" | "MeanAxis" => {
                    let axis = match step.attr {
                        NodeAttr::Axis(a) => a,
                        ref other => panic!("{} without axis: {other:?}", step.op),
                    };
                    let src = pack(&inputs[0]);
                    // same expression as Tensor::mean_axis applies to the sum
                    let mean_scale = (step.op == "MeanAxis")
                        .then(|| 1.0 / (src.src.shape[axis] as f32));
                    let dst = Desc::dense(shape, slot_start());
                    let bound =
                        BoundStep::Reduce { src, axis, mean_scale, dst: dst.clone() };
                    (dst, bound)
                }
                "Concat" => {
                    let axis = match step.attr {
                        NodeAttr::Axis(a) => a,
                        ref other => panic!("Concat without axis: {other:?}"),
                    };
                    let parts: Vec<PackedOperand> = inputs.iter().map(&mut pack).collect();
                    let outer: usize = shape[..axis].iter().product();
                    let inner: usize = shape[axis + 1..].iter().product();
                    let dst = Desc::dense(shape, slot_start());
                    let bound =
                        BoundStep::Concat { parts, axis, outer, inner, dst: dst.clone() };
                    (dst, bound)
                }
                "GatherRows" => {
                    let table = inputs[0].clone();
                    debug_assert_eq!(table.shape.len(), 2, "embedding table must be rank 2");
                    let dst = Desc::dense(shape, slot_start());
                    let bound = BoundStep::GatherRows {
                        table,
                        channel: gather_channel,
                        dst: dst.clone(),
                    };
                    gather_channel += 1;
                    (dst, bound)
                }
                other => panic!("op {other} escaped compile-time support checks"),
            };
            scratch_peak = scratch_peak.max(scratch - slots_end);
            descs[step.node] = Some(desc);
            steps.push(Exec {
                step: bound,
                dies: step.dies_after.iter().map(|&id| slot_span[id]).collect(),
            });
        }

        let pred = descs[sched.pred].clone().expect("pred scheduled");
        let mut arena = vec![0.0f32; slots_end + scratch_peak];
        arena[..params_end].copy_from_slice(&self.params);
        BoundModel {
            arena,
            steps,
            pred,
            params_end,
            slots_end,
            explicit: self.explicit,
            batch_size: b,
        }
    }
}

/// Split the arena into `left | out | right` so a step can write its output
/// while reading operands from either side. Liveness guarantees operand
/// spans never straddle the output span.
fn write_out<R>(
    arena: &mut [f32],
    out: (usize, usize),
    f: impl FnOnce(&Reader<'_>, &mut [f32]) -> R,
) -> R {
    let (left, rest) = arena.split_at_mut(out.0);
    let (dst, right) = rest.split_at_mut(out.1 - out.0);
    let reader = Reader { left, right, right_base: out.1 };
    f(&reader, dst)
}

struct Reader<'a> {
    left: &'a [f32],
    right: &'a [f32],
    right_base: usize,
}

impl Reader<'_> {
    fn view<'s>(&'s self, d: &'s Desc) -> ViewRef<'s> {
        if d.range.1 <= self.left.len() {
            ViewRef { data: self.left, offset: d.offset, shape: &d.shape, strides: &d.strides }
        } else {
            assert!(
                d.range.0 >= self.right_base,
                "executor aliasing: input span {:?} overlaps the output",
                d.range
            );
            ViewRef {
                data: self.right,
                offset: d.offset - self.right_base,
                shape: &d.shape,
                strides: &d.strides,
            }
        }
    }

    fn dense<'s>(&'s self, d: &'s Desc) -> &'s [f32] {
        debug_assert!(d.is_contiguous(), "dense() on strided desc {d:?}");
        let n = numel(&d.shape);
        if d.range.1 <= self.left.len() {
            &self.left[d.offset..d.offset + n]
        } else {
            assert!(
                d.range.0 >= self.right_base,
                "executor aliasing: input span {:?} overlaps the output",
                d.range
            );
            let o = d.offset - self.right_base;
            &self.right[o..o + n]
        }
    }
}

fn run_map(src: ViewRef<'_>, out: &mut [f32], f: MapFn, post: &[MapFn]) {
    // per-element expressions match the Tensor wrappers exactly; the
    // no-post fast path keeps the hot monomorphized closures branch-free
    if post.is_empty() {
        match f {
            MapFn::AddScalar(s) => kernel::map_into(src, out, |v| v + s),
            MapFn::MulScalar(s) => kernel::map_into(src, out, |v| v * s),
            MapFn::Neg => kernel::map_into(src, out, |v| -v),
            MapFn::Relu => kernel::map_into(src, out, |v| v.max(0.0)),
            MapFn::Gelu => kernel::map_into(src, out, gelu_scalar),
            MapFn::Sigmoid => kernel::map_into(src, out, |v| 1.0 / (1.0 + (-v).exp())),
            MapFn::Tanh => kernel::map_into(src, out, f32::tanh),
            MapFn::Sqrt => kernel::map_into(src, out, f32::sqrt),
            MapFn::Exp => kernel::map_into(src, out, f32::exp),
            MapFn::Ln => kernel::map_into(src, out, f32::ln),
            MapFn::Square => kernel::map_into(src, out, |v| v * v),
            MapFn::Abs => kernel::map_into(src, out, f32::abs),
        }
    } else {
        kernel::map_into(src, out, |v| apply_post(apply_map(f, v), post));
    }
}

fn run_zip(
    a: ViewRef<'_>,
    b: ViewRef<'_>,
    out_shape: &[usize],
    out: &mut [f32],
    f: ZipFn,
    post: &[MapFn],
) {
    if post.is_empty() {
        match f {
            ZipFn::Add => kernel::zip_into(a, b, out_shape, out, |x, y| x + y),
            ZipFn::Sub => kernel::zip_into(a, b, out_shape, out, |x, y| x - y),
            ZipFn::Mul => kernel::zip_into(a, b, out_shape, out, |x, y| x * y),
            ZipFn::Div => kernel::zip_into(a, b, out_shape, out, |x, y| x / y),
        }
    } else {
        match f {
            ZipFn::Add => kernel::zip_into(a, b, out_shape, out, |x, y| apply_post(x + y, post)),
            ZipFn::Sub => kernel::zip_into(a, b, out_shape, out, |x, y| apply_post(x - y, post)),
            ZipFn::Mul => kernel::zip_into(a, b, out_shape, out, |x, y| apply_post(x * y, post)),
            ZipFn::Div => kernel::zip_into(a, b, out_shape, out, |x, y| apply_post(x / y, post)),
        }
    }
}

fn load_batch_tensor(arena: &mut [f32], src: &Tensor, dst: &Desc, what: &str) {
    assert_eq!(
        src.shape(),
        &dst.shape[..],
        "batch {what} shape does not match the compiled plan"
    );
    write_out(arena, dst.range, |_, out| kernel::gather_into(src.view_ref(), out));
}

fn pack_operand(arena: &mut [f32], p: &PackedOperand) {
    if p.packed {
        write_out(arena, p.dense.range, |r, out| kernel::gather_into(r.view(&p.src), out));
    }
}

impl BoundModel {
    /// Batch size this binding was laid out for.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Total bytes of the single arena allocation (params + slots + scratch).
    pub fn arena_bytes(&self) -> usize {
        self.arena.len() * std::mem::size_of::<f32>()
    }

    /// Forward pass: returns the `[B, L, c]` prediction.
    pub fn run(&mut self, batch: &Batch) -> Tensor {
        self.run_inner(batch, None)
    }

    /// Forward pass that fills every slot with `poison` the moment liveness
    /// declares it dead (and pre-fills all non-parameter storage before the
    /// first step). Output bytes must equal [`BoundModel::run`]'s — the
    /// arena-safety property test drives this.
    pub fn run_with_poison(&mut self, batch: &Batch, poison: f32) -> Tensor {
        self.run_inner(batch, Some(poison))
    }

    fn run_inner(&mut self, batch: &Batch, poison: Option<f32>) -> Tensor {
        let arena = &mut self.arena;
        if let Some(p) = poison {
            arena[self.params_end..].fill(p);
        }
        for exec in &self.steps {
            match &exec.step {
                BoundStep::Nop => {}
                BoundStep::LoadX { dst } => load_batch_tensor(arena, &batch.x, dst, "x"),
                BoundStep::LoadCovariate { dst } => {
                    let src = if self.explicit {
                        batch
                            .cov_numerical
                            .as_ref()
                            .expect("compiled for explicit covariates; batch has none")
                    } else {
                        &batch.time_feats
                    };
                    load_batch_tensor(arena, src, dst, "covariate");
                }
                BoundStep::Materialize { src, dst } => {
                    write_out(arena, dst.range, |r, out| kernel::gather_into(r.view(src), out));
                }
                BoundStep::Map { src, f, post, dst } => {
                    write_out(arena, dst.range, |r, out| run_map(r.view(src), out, *f, post));
                }
                BoundStep::Zip { a, b, f, post, dst } => {
                    write_out(arena, dst.range, |r, out| {
                        run_zip(r.view(a), r.view(b), &dst.shape, out, *f, post)
                    });
                }
                BoundStep::MatMul { a, b, post, dst } => {
                    pack_operand(arena, b);
                    write_out(arena, dst.range, |r, out| {
                        let (av, bv) = (r.view(a), r.view(&b.dense));
                        if post.is_empty() {
                            kernel::matmul_packed_into(av, bv, out, |v| v);
                        } else {
                            kernel::matmul_packed_into(av, bv, out, |v| apply_post(v, post));
                        }
                    });
                }
                BoundStep::Softmax { src, width, log, dst } => {
                    pack_operand(arena, src);
                    write_out(arena, dst.range, |r, out| {
                        let data = r.dense(&src.dense);
                        if *log {
                            kernel::log_softmax_lastdim_into(data, *width, out);
                        } else {
                            kernel::softmax_lastdim_into(data, *width, out);
                        }
                    });
                }
                BoundStep::Reduce { src, axis, mean_scale, dst } => {
                    pack_operand(arena, src);
                    write_out(arena, dst.range, |r, out| {
                        kernel::axis_accumulate_into(
                            r.dense(&src.dense),
                            &src.dense.shape,
                            *axis,
                            0.0,
                            |acc, v| acc + v,
                            out,
                        );
                        if let Some(s) = mean_scale {
                            for v in out.iter_mut() {
                                *v *= s;
                            }
                        }
                    });
                }
                BoundStep::Concat { parts, axis, outer, inner, dst } => {
                    for p in parts {
                        pack_operand(arena, p);
                    }
                    write_out(arena, dst.range, |r, out| {
                        let packed: Vec<(&[f32], usize)> = parts
                            .iter()
                            .map(|p| (r.dense(&p.dense), p.dense.shape[*axis]))
                            .collect();
                        kernel::concat_packed_into(&packed, *outer, *inner, out);
                    });
                }
                BoundStep::GatherRows { table, channel, dst } => {
                    let chans = batch
                        .cov_categorical
                        .as_ref()
                        .expect("compiled for categorical covariates; batch has none");
                    let indices = &chans[*channel];
                    assert_eq!(
                        indices.len(),
                        dst.shape[0],
                        "categorical channel {channel}: index count does not match the plan"
                    );
                    write_out(arena, dst.range, |r, out| {
                        kernel::gather_rows_into(
                            r.dense(table),
                            table.shape[0],
                            table.shape[1],
                            indices,
                            out,
                        )
                    });
                }
            }
            if let Some(p) = poison {
                for &(s, e) in &exec.dies {
                    arena[s..e].fill(p);
                }
            }
        }
        let d = &self.pred;
        let mut out = vec![0.0f32; numel(&d.shape)];
        kernel::gather_into(
            ViewRef { data: arena, offset: d.offset, shape: &d.shape, strides: &d.strides },
            &mut out,
        );
        Tensor::from_vec(out, &d.shape)
    }

    /// Re-verify the scheduler's no-aliasing invariant over the *bound*
    /// ranges: no step writes a span it also reads (including in-place-prone
    /// cases like a materializing `Reshape` whose input dies at the same
    /// step). The split-borrow in `write_out` would panic at run time; this
    /// makes the property checkable without running a batch.
    pub fn assert_no_aliasing(&self) {
        fn disjoint(a: Span, b: Span) -> bool {
            a.1 <= b.0 || b.1 <= a.0
        }
        let check = |out: Span, reads: &[Span]| {
            for &r in reads {
                assert!(disjoint(out, r), "write span {out:?} aliases read span {r:?}");
            }
        };
        let packs = |check: &dyn Fn(Span, &[Span]), p: &PackedOperand| {
            if p.packed {
                check(p.dense.range, &[p.src.range]);
            }
        };
        for exec in &self.steps {
            match &exec.step {
                BoundStep::Nop | BoundStep::LoadX { .. } | BoundStep::LoadCovariate { .. } => {}
                BoundStep::Materialize { src, dst } => check(dst.range, &[src.range]),
                BoundStep::Map { src, dst, .. } => check(dst.range, &[src.range]),
                BoundStep::Zip { a, b, dst, .. } => check(dst.range, &[a.range, b.range]),
                BoundStep::MatMul { a, b, dst, .. } => {
                    packs(&check, b);
                    check(dst.range, &[a.range, b.dense.range]);
                }
                BoundStep::Softmax { src, dst, .. } | BoundStep::Reduce { src, dst, .. } => {
                    packs(&check, src);
                    check(dst.range, &[src.dense.range]);
                }
                BoundStep::Concat { parts, dst, .. } => {
                    for p in parts {
                        packs(&check, p);
                        check(dst.range, &[p.dense.range]);
                    }
                }
                BoundStep::GatherRows { table, dst, .. } => check(dst.range, &[table.range]),
            }
        }
    }
}

/// Per-element arena state tracked by the dynamic shadow-writes checker.
#[cfg(any(debug_assertions, feature = "shadow-writes"))]
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Shadow {
    /// Never written since bind (or since its slot was last freed and the
    /// new owner has not written yet — the checker distinguishes via Dead).
    Undef,
    /// Holds a value some later step may read.
    Live,
    /// Freed by `dies_after`; reading it is use-after-free.
    Dead,
}

#[cfg(any(debug_assertions, feature = "shadow-writes"))]
impl BoundModel {
    /// Dynamic shadow-writes checker (debug builds and the `shadow-writes`
    /// feature only): replay the bound step list over a per-element shadow
    /// arena — `Undef | Live | Dead` — and validate at this concrete `B`
    /// exactly the claims `lip_analyze::verify_schedule` proves symbolically
    /// for all `B`:
    ///
    /// * every element a step reads is **live** (def-before-use, no
    ///   use-after-free) — parameters are live from bind time;
    /// * every **slot** write lands on non-live storage (the pool never
    ///   clobbers a live value; scratch, by contrast, is freely reused);
    /// * no step's write span overlaps one of its read spans;
    /// * the prediction is fully live when the walk ends.
    ///
    /// Returns one message per violation; the differential tests assert the
    /// result is empty for every compiled variant, tying the static verifier
    /// to the bytes the executor actually touches.
    pub fn shadow_check(&self) -> Vec<String> {
        let mut shadow = vec![Shadow::Undef; self.arena.len()];
        shadow[..self.params_end].fill(Shadow::Live);
        let mut violations = Vec::new();

        for (k, exec) in self.steps.iter().enumerate() {
            // (reads, write) spans per sub-action, in execution order:
            // packs gather strided operands into scratch before the kernel.
            let mut actions: Vec<(Vec<Span>, Option<Span>)> = Vec::new();
            let pack = |actions: &mut Vec<_>, p: &PackedOperand| {
                if p.packed {
                    actions.push((vec![p.src.range], Some(p.dense.range)));
                }
            };
            match &exec.step {
                BoundStep::Nop => {}
                BoundStep::LoadX { dst } | BoundStep::LoadCovariate { dst } => {
                    actions.push((vec![], Some(dst.range)));
                }
                BoundStep::Materialize { src, dst } => {
                    actions.push((vec![src.range], Some(dst.range)));
                }
                BoundStep::Map { src, dst, .. } => {
                    actions.push((vec![src.range], Some(dst.range)));
                }
                BoundStep::Zip { a, b, dst, .. } => {
                    actions.push((vec![a.range, b.range], Some(dst.range)));
                }
                BoundStep::MatMul { a, b, dst, .. } => {
                    pack(&mut actions, b);
                    actions.push((vec![a.range, b.dense.range], Some(dst.range)));
                }
                BoundStep::Softmax { src, dst, .. } | BoundStep::Reduce { src, dst, .. } => {
                    pack(&mut actions, src);
                    actions.push((vec![src.dense.range], Some(dst.range)));
                }
                BoundStep::Concat { parts, dst, .. } => {
                    let mut reads = Vec::with_capacity(parts.len());
                    for p in parts {
                        pack(&mut actions, p);
                        reads.push(p.dense.range);
                    }
                    actions.push((reads, Some(dst.range)));
                }
                BoundStep::GatherRows { table, dst, .. } => {
                    actions.push((vec![table.range], Some(dst.range)));
                }
            }

            for (reads, write) in actions {
                for &(s, e) in &reads {
                    if let Some(i) = (s..e).find(|&i| shadow[i] != Shadow::Live) {
                        violations.push(format!(
                            "step {k}: reads [{s}, {e}) but element {i} is {:?}",
                            shadow[i]
                        ));
                    }
                    if let Some((ws, we)) = write {
                        if s < we && ws < e {
                            violations.push(format!(
                                "step {k}: read span [{s}, {e}) overlaps write span [{ws}, {we})"
                            ));
                        }
                    }
                }
                if let Some((ws, we)) = write {
                    if ws < self.params_end {
                        violations.push(format!(
                            "step {k}: write span [{ws}, {we}) clobbers the parameter segment"
                        ));
                    } else if we <= self.slots_end {
                        // slot write = the pool handing this span to a new
                        // value: nothing in it may still be live
                        if let Some(i) = (ws..we).find(|&i| shadow[i] == Shadow::Live) {
                            violations.push(format!(
                                "step {k}: slot write [{ws}, {we}) clobbers live element {i}"
                            ));
                        }
                    }
                    shadow[ws..we].fill(Shadow::Live);
                }
            }

            // Mark dying spans dead. No double-free rule here: a pooled span
            // recycled between two view-only `Reshape` owners is freed twice
            // without an intervening write, which is legitimate — double-free
            // detection needs slot identity and generations, and lives in the
            // static verifier (`lip_analyze::verify_schedule`).
            for &(s, e) in &exec.dies {
                shadow[s..e].fill(Shadow::Dead);
            }
        }

        let (ps, pe) = self.pred.range;
        if let Some(i) = (ps..pe).find(|&i| shadow[i] != Shadow::Live) {
            violations.push(format!(
                "prediction span [{ps}, {pe}) has non-live element {i}: {:?}",
                shadow[i]
            ));
        }
        violations
    }
}
