//! Arena-safety property test: the executor's liveness analysis claims a
//! slot is never read after its last scheduled use. Enforce that claim by
//! *poisoning* every slot the moment it dies (plus all non-parameter arena
//! storage before the first step) and asserting the prediction bytes still
//! equal tape inference. If any kernel read a dead or uninitialized buffer,
//! the poison (NaN or a huge magnitude) would contaminate the output.

use lip_analyze::synthetic_batch;
use lip_autograd::Graph;
use lip_data::window::Batch;
use lip_data::CovariateSpec;
use lip_exec::compile_inference;
use lip_rng::prop_check;
use lip_rng::rngs::StdRng;
use lip_rng::SeedableRng;
use lipformer::{Forecaster, LiPFormer, LiPFormerConfig};

fn tape_pred_bytes(model: &LiPFormer, batch: &Batch) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(0);
    let mut g = Graph::new(model.store());
    let y = model.forward(&mut g, batch, false, &mut rng);
    g.value(y).to_bytes()
}

fn toy_config() -> LiPFormerConfig {
    let mut c = LiPFormerConfig::small(24, 8, 2);
    c.patch_len = 6;
    c.hidden = 8;
    c.heads = 2;
    c.encoder_hidden = 8;
    c
}

fn variant(which: usize) -> LiPFormerConfig {
    let base = toy_config();
    match which {
        0 => base,
        1 => base.with_ln(),
        2 => base.with_ffns(),
        3 => base.with_ln().with_ffns(),
        4 => base.without_cross_patch(),
        _ => base.without_inter_patch(),
    }
}

fn spec(explicit: bool) -> CovariateSpec {
    if explicit {
        CovariateSpec {
            numerical: 2,
            cardinalities: vec![5, 3],
            time_features: 4,
        }
    } else {
        CovariateSpec {
            numerical: 0,
            cardinalities: vec![],
            time_features: 4,
        }
    }
}

#[test]
fn poisoning_dead_slots_never_changes_output_bytes() {
    prop_check!(cases = 12, seed = 0xa12e, |g| {
        let config = variant(g.usize_in(0, 6));
        let spec = spec(g.usize_in(0, 2) == 1);
        let b = g.usize_in(1, 6);
        let poison = g.pick(&[f32::NAN, 1e30, -777.25]);
        let threads = g.pick(&[1usize, 2, 3, 8]);

        let model = LiPFormer::new(config.clone(), &spec, 11);
        let compiled = compile_inference(&model, &spec).expect("compile");
        let batch = synthetic_batch(&config, &spec, b);
        let mut bound = compiled.bind(b);
        let want = lip_par::with_threads(1, || tape_pred_bytes(&model, &batch));
        let got =
            lip_par::with_threads(threads, || bound.run_with_poison(&batch, poison).to_bytes());
        assert_eq!(
            got, want,
            "poison {poison} leaked into the output (b={b}, threads={threads})"
        );
    });
}

/// Regression guard for in-place/aliasing hazards: a materializing `Reshape`
/// (or any step) whose input dies at the very step that consumes it must
/// still write to a *different* physical span — the scheduler allocates the
/// output slot before releasing the dying input. `assert_no_aliasing`
/// re-checks every bound step's write span against its read spans.
#[test]
fn no_step_writes_a_span_it_reads() {
    for which in 0..6 {
        let config = variant(which);
        for explicit in [false, true] {
            let spec = spec(explicit);
            let model = LiPFormer::new(config.clone(), &spec, 3);
            let compiled = compile_inference(&model, &spec).expect("compile");
            for b in [1usize, 4, 32] {
                compiled.bind(b).assert_no_aliasing();
            }
        }
    }
}

/// The poisoned run and the plain run share one bound arena — interleaving
/// them must not let state leak from one into the next (every run fully
/// rewrites what it reads).
#[test]
fn poisoned_and_plain_runs_interleave_cleanly() {
    let config = toy_config();
    let spec = spec(true);
    let model = LiPFormer::new(config.clone(), &spec, 9);
    let compiled = compile_inference(&model, &spec).expect("compile");
    let batch = synthetic_batch(&config, &spec, 4);
    let mut bound = compiled.bind(4);
    let want = tape_pred_bytes(&model, &batch);
    assert_eq!(bound.run(&batch).to_bytes(), want);
    assert_eq!(bound.run_with_poison(&batch, f32::NAN).to_bytes(), want);
    assert_eq!(bound.run(&batch).to_bytes(), want, "poison must not persist");
}
