//! Differential tests: the compiled executor must be **byte-identical** to
//! tape (`Graph`-recorded) inference — across all nine benchmark datasets,
//! every architecture variant, multiple batch sizes served by one compiled
//! plan, and every thread budget. Comparisons go through fnv1a-64 hashes of
//! the serialized prediction so a divergence prints as one number, not two
//! tensors.

use lip_analyze::synthetic_batch;
use lip_autograd::Graph;
use lip_data::pipeline::prepare;
use lip_data::window::Batch;
use lip_data::{generate, CovariateSpec, DatasetName, GeneratorConfig};
use lip_exec::compile_inference;
use lip_rng::rngs::StdRng;
use lip_rng::SeedableRng;
use lipformer::{Forecaster, LiPFormer, LiPFormerConfig};

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The tape engine's prediction bytes (eval mode, like the executor).
fn tape_pred_bytes(model: &LiPFormer, batch: &Batch) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(0);
    let mut g = Graph::new(model.store());
    let y = model.forward(&mut g, batch, false, &mut rng);
    g.value(y).to_bytes()
}

fn implicit_spec() -> CovariateSpec {
    CovariateSpec {
        numerical: 0,
        cardinalities: vec![],
        time_features: 4,
    }
}

fn explicit_spec() -> CovariateSpec {
    CovariateSpec {
        numerical: 2,
        cardinalities: vec![5, 3],
        time_features: 4,
    }
}

/// Small-but-structured config used by the variant sweep (mirrors the model
/// crate's unit-test config so debug-mode runtime stays reasonable).
fn toy_config() -> LiPFormerConfig {
    let mut c = LiPFormerConfig::small(24, 8, 2);
    c.patch_len = 6;
    c.hidden = 8;
    c.heads = 2;
    c.encoder_hidden = 8;
    c
}

#[test]
fn nine_benchmarks_byte_identical_across_batch_sizes_and_threads() {
    for name in DatasetName::all() {
        let ds = generate(name, GeneratorConfig::test(3));
        let prep = prepare(&ds, 48, 24);
        let config = LiPFormerConfig::small(48, 24, prep.channels);
        let model = LiPFormer::new(config, &prep.spec, 7);
        // one compiled plan serves every batch size below
        let compiled = compile_inference(&model, &prep.spec)
            .unwrap_or_else(|e| panic!("{name:?}: {e}"));
        for &b in &[1usize, 2, 7, 32] {
            let b = b.min(prep.train.len());
            let indices: Vec<usize> = (0..b).collect();
            let batch = prep.train.batch(&indices);
            let mut bound = compiled.bind(b);
            // the dynamic shadow-writes checker must agree with the static
            // verifier's claims at this concrete B
            let shadow = bound.shadow_check();
            assert!(shadow.is_empty(), "{name:?}: b={b} shadow violations: {shadow:?}");
            let want = fnv1a(&lip_par::with_threads(1, || tape_pred_bytes(&model, &batch)));
            for &t in &[1usize, 8] {
                let got = fnv1a(&lip_par::with_threads(t, || bound.run(&batch).to_bytes()));
                assert_eq!(got, want, "{name:?}: b={b} threads={t} diverged from tape");
            }
        }
    }
}

#[test]
fn architecture_variants_byte_identical_for_both_covariate_policies() {
    let base = toy_config();
    let variants: Vec<(&str, LiPFormerConfig)> = vec![
        ("default", base.clone()),
        ("ln", base.clone().with_ln()),
        ("ffn", base.clone().with_ffns()),
        ("ln+ffn", base.clone().with_ln().with_ffns()),
        ("no-cross", base.clone().without_cross_patch()),
        ("no-inter", base.clone().without_inter_patch()),
        ("linear-only", base.without_cross_patch().without_inter_patch()),
    ];
    for (label, config) in &variants {
        for spec in [implicit_spec(), explicit_spec()] {
            let model = LiPFormer::new(config.clone(), &spec, 11);
            let compiled = compile_inference(&model, &spec)
                .unwrap_or_else(|e| panic!("{label}: {e}"));
            for &b in &[1usize, 7] {
                let batch = synthetic_batch(config, &spec, b);
                let mut bound = compiled.bind(b);
                let shadow = bound.shadow_check();
                assert!(
                    shadow.is_empty(),
                    "{label} (explicit={}) b={b} shadow violations: {shadow:?}",
                    spec.has_explicit()
                );
                let want =
                    fnv1a(&lip_par::with_threads(1, || tape_pred_bytes(&model, &batch)));
                for &t in &[1usize, 2, 3, 8] {
                    let got =
                        fnv1a(&lip_par::with_threads(t, || bound.run(&batch).to_bytes()));
                    assert_eq!(
                        got, want,
                        "{label} (explicit={}) b={b} threads={t} diverged",
                        spec.has_explicit()
                    );
                }
            }
        }
    }
}

#[test]
fn every_registered_composition_compiles_byte_identical() {
    for (label, stages) in lipformer::registered_compositions() {
        let config = toy_config().with_stages(stages);
        for spec in [implicit_spec(), explicit_spec()] {
            let model = LiPFormer::new(config.clone(), &spec, 23);
            let compiled = compile_inference(&model, &spec)
                .unwrap_or_else(|e| panic!("{label}: {e}"));
            for &b in &[1usize, 7] {
                let batch = synthetic_batch(&config, &spec, b);
                let mut bound = compiled.bind(b);
                let shadow = bound.shadow_check();
                assert!(
                    shadow.is_empty(),
                    "{label} (explicit={}) b={b} shadow violations: {shadow:?}",
                    spec.has_explicit()
                );
                let want =
                    fnv1a(&lip_par::with_threads(1, || tape_pred_bytes(&model, &batch)));
                for &t in &[1usize, 4] {
                    let got =
                        fnv1a(&lip_par::with_threads(t, || bound.run(&batch).to_bytes()));
                    assert_eq!(
                        got, want,
                        "{label} (explicit={}) b={b} threads={t} diverged",
                        spec.has_explicit()
                    );
                }
            }
        }
    }
}

#[test]
fn checkpointed_model_compiles_byte_identical() {
    let config = toy_config();
    let spec = explicit_spec();
    let model = LiPFormer::new(config.clone(), &spec, 42);
    let dir = std::env::temp_dir().join("lip_exec_tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("differential_roundtrip.ckpt");
    lipformer::checkpoint::save(&path, &config, model.store()).unwrap();

    let loaded = lipformer::checkpoint::load_model(&path, &spec).unwrap();
    let compiled = compile_inference(&loaded, &spec).unwrap();
    let batch = synthetic_batch(&config, &spec, 3);
    let mut bound = compiled.bind(3);
    assert_eq!(
        fnv1a(&bound.run(&batch).to_bytes()),
        fnv1a(&tape_pred_bytes(&model, &batch)),
        "checkpoint → load_model → compile must reproduce the original model's bytes"
    );
}

#[test]
fn base_only_model_is_rejected() {
    match compile_inference(
        &LiPFormer::without_enriching(toy_config(), 1),
        &implicit_spec(),
    ) {
        Err(e @ lip_exec::CompileError::Unsupported(_)) => {
            assert!(e.to_string().contains("enriching"), "{e}");
        }
        Err(e) => panic!("wrong error kind: {e}"),
        Ok(_) => panic!("base-only model must not compile"),
    }
}
