//! Fusion differential suite: a fused program (elementwise chains collapsed
//! into their head op's store loop) must be **byte-identical** to the
//! unfused one-pass-per-op program — and to the tape — for every
//! architecture variant, covariate policy, batch size, and thread budget.
//! The fused schedule must also be strictly cheaper: fewer steps and no
//! more arena slots.

use lip_analyze::synthetic_batch;
use lip_autograd::Graph;
use lip_data::window::Batch;
use lip_data::CovariateSpec;
use lip_exec::{compile_inference, compile_inference_unfused};
use lip_rng::rngs::StdRng;
use lip_rng::SeedableRng;
use lipformer::{Forecaster, LiPFormer, LiPFormerConfig};

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn tape_pred_bytes(model: &LiPFormer, batch: &Batch) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(0);
    let mut g = Graph::new(model.store());
    let y = model.forward(&mut g, batch, false, &mut rng);
    g.value(y).to_bytes()
}

fn implicit_spec() -> CovariateSpec {
    CovariateSpec {
        numerical: 0,
        cardinalities: vec![],
        time_features: 4,
    }
}

fn explicit_spec() -> CovariateSpec {
    CovariateSpec {
        numerical: 2,
        cardinalities: vec![5, 3],
        time_features: 4,
    }
}

fn toy_config() -> LiPFormerConfig {
    let mut c = LiPFormerConfig::small(24, 8, 2);
    c.patch_len = 6;
    c.hidden = 8;
    c.heads = 2;
    c.encoder_hidden = 8;
    c
}

#[test]
fn fused_equals_unfused_across_variants_batches_and_threads() {
    let base = toy_config();
    // ffn variants exercise Relu-tail chains on top of the ever-present
    // attention MatMul → MulScalar scale
    let variants: Vec<(&str, LiPFormerConfig)> = vec![
        ("default", base.clone()),
        ("ln", base.clone().with_ln()),
        ("ffn", base.clone().with_ffns()),
        ("ln+ffn", base.clone().with_ln().with_ffns()),
        ("no-cross", base.clone().without_cross_patch()),
        ("linear-only", base.without_cross_patch().without_inter_patch()),
    ];
    for (label, config) in &variants {
        for spec in [implicit_spec(), explicit_spec()] {
            let model = LiPFormer::new(config.clone(), &spec, 23);
            let fused = compile_inference(&model, &spec)
                .unwrap_or_else(|e| panic!("{label}: {e}"));
            let unfused = compile_inference_unfused(&model, &spec)
                .unwrap_or_else(|e| panic!("{label} unfused: {e}"));
            let (fs, us) = (fused.schedule(), unfused.schedule());
            assert!(fs.fused_ops() > 0, "{label}: nothing fused");
            assert_eq!(
                fs.steps.len() + fs.fused_ops(),
                us.steps.len(),
                "{label}: every fused stage must remove exactly one step"
            );
            assert!(
                fs.slot_sizes.len() <= us.slot_sizes.len(),
                "{label}: fusion must never need more slots"
            );
            // batch sizes straddle the elementwise chunk boundary at toy
            // scale as far as the model allows; 1 is the degenerate case
            for &b in &[1usize, 2, 7] {
                let batch = synthetic_batch(config, &spec, b);
                let mut bf = fused.bind(b);
                let mut bu = unfused.bind(b);
                bf.assert_no_aliasing();
                bu.assert_no_aliasing();
                // dynamic shadow-writes checker: fused and unfused programs
                // must both uphold the statically verified span discipline
                let (sf, su) = (bf.shadow_check(), bu.shadow_check());
                assert!(sf.is_empty(), "{label} b={b} fused shadow violations: {sf:?}");
                assert!(su.is_empty(), "{label} b={b} unfused shadow violations: {su:?}");
                let want =
                    fnv1a(&lip_par::with_threads(1, || tape_pred_bytes(&model, &batch)));
                for &t in &[1usize, 2, 3, 8] {
                    let f = fnv1a(&lip_par::with_threads(t, || bf.run(&batch).to_bytes()));
                    let u = fnv1a(&lip_par::with_threads(t, || bu.run(&batch).to_bytes()));
                    assert_eq!(
                        f, u,
                        "{label} (explicit={}) b={b} threads={t}: fused != unfused",
                        spec.has_explicit()
                    );
                    assert_eq!(
                        f, want,
                        "{label} (explicit={}) b={b} threads={t}: fused != tape",
                        spec.has_explicit()
                    );
                }
            }
        }
    }
}

#[test]
fn fused_poison_runs_stay_identical() {
    // arena safety must survive fusion: liveness now frees operands at the
    // fused tail, and a poisoned run must still reproduce the clean bytes
    let config = toy_config().with_ffns();
    let spec = explicit_spec();
    let model = LiPFormer::new(config.clone(), &spec, 5);
    let compiled = compile_inference(&model, &spec).unwrap();
    for &b in &[1usize, 3] {
        let batch = synthetic_batch(&config, &spec, b);
        let mut bound = compiled.bind(b);
        let clean = bound.run(&batch).to_bytes();
        for poison in [f32::NAN, 1.0e30, -0.0] {
            let poisoned = bound.run_with_poison(&batch, poison).to_bytes();
            assert_eq!(clean, poisoned, "b={b} poison={poison} leaked into the output");
        }
    }
}

#[test]
fn fused_arena_is_no_larger() {
    let config = toy_config().with_ffns();
    let spec = implicit_spec();
    let model = LiPFormer::new(config.clone(), &spec, 9);
    let fused = compile_inference(&model, &spec).unwrap();
    let unfused = compile_inference_unfused(&model, &spec).unwrap();
    for &b in &[1usize, 4, 32] {
        assert!(
            fused.bind(b).arena_bytes() <= unfused.bind(b).arena_bytes(),
            "b={b}: fusion grew the arena"
        );
    }
}
