//! Stage-decomposition parity: the default `Representation` / `Extraction` /
//! `Projection` composition is the *same model* as the pre-refactor
//! monolith — pinned with the golden fnv1a hashes captured on pre-refactor
//! `main`, across thread budgets {1, 4}. Alternative compositions must
//! change the bytes (they are different models) without changing shapes.

use lip_data::pipeline::prepare;
use lip_data::window::Batch;
use lip_data::{generate, CovariateSpec, DatasetName, GeneratorConfig};
use lip_rng::rngs::StdRng;
use lip_rng::SeedableRng;
use lip_tensor::Tensor;
use lipformer::{
    registered_compositions, Forecaster, ForecastMetrics, LiPFormer, LiPFormerConfig, StageSpec,
    TrainConfig, Trainer,
};

/// FNV-1a over a byte stream — the golden-hash currency of this repo.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The registered stage triple named `label`.
fn composition(label: &str) -> StageSpec {
    registered_compositions()
        .into_iter()
        .find(|(l, _)| *l == label)
        .unwrap_or_else(|| panic!("composition '{label}' not registered"))
        .1
}

fn spec() -> CovariateSpec {
    CovariateSpec {
        numerical: 0,
        cardinalities: vec![],
        time_features: 4,
    }
}

/// The reproducibility suite's forward fixture, built through an explicit
/// `with_stages` composition instead of the implicit default.
fn forward_fixture() -> (LiPFormerConfig, Batch) {
    let mut cfg = LiPFormerConfig::small(24, 8, 2).with_stages(composition("default"));
    cfg.hidden = 16;
    cfg.encoder_hidden = 16;
    let batch = {
        let mut rng = StdRng::seed_from_u64(3);
        Batch {
            x: Tensor::randn(&[4, 24, 2], &mut rng),
            y: Tensor::randn(&[4, 8, 2], &mut rng),
            time_feats: Tensor::randn(&[4, 8, 4], &mut rng).mul_scalar(0.2),
            cov_numerical: None,
            cov_categorical: None,
        }
    };
    (cfg, batch)
}

fn forward_bytes(cfg: &LiPFormerConfig, batch: &Batch) -> Vec<u8> {
    let model = LiPFormer::new(cfg.clone(), &spec(), 1234);
    let mut rng = StdRng::seed_from_u64(0);
    let mut g = lip_autograd::Graph::new(model.store());
    let y = model.forward(&mut g, batch, false, &mut rng);
    g.value(y).to_bytes()
}

/// Forward logits of the explicitly composed default pipeline must match
/// the hash captured on pre-refactor `main` — on 1 thread and on 4.
#[test]
fn composed_default_forward_matches_pre_refactor_golden_hash() {
    let (cfg, batch) = forward_fixture();
    for threads in [1usize, 4] {
        let bytes = lip_par::with_threads(threads, || forward_bytes(&cfg, &batch));
        assert_eq!(bytes.len(), 288, "fixture shape drifted ({threads} threads)");
        assert_eq!(
            fnv1a(&bytes),
            0x9f40_8c68_9529_80e1,
            "composed default forward diverged from the pre-refactor monolith \
             ({threads} threads)"
        );
    }
}

/// Two epochs of training through the explicitly composed default pipeline
/// must reproduce the pre-refactor parameter bytes and test-MSE bits — on
/// 1 thread and on 4.
#[test]
fn composed_default_training_matches_pre_refactor_golden_hash() {
    let train = || {
        let ds = generate(DatasetName::ETTh1, GeneratorConfig::test(74));
        let prep = prepare(&ds, 48, 12);
        let mut cfg =
            LiPFormerConfig::small(48, 12, prep.channels).with_stages(composition("default"));
        cfg.hidden = 16;
        cfg.encoder_hidden = 16;
        cfg.dropout = 0.2;
        let mut model = LiPFormer::new(cfg, &prep.spec, 7);
        let mut trainer = Trainer::new(TrainConfig {
            epochs: 2,
            pretrain_epochs: 0,
            ..TrainConfig::fast()
        });
        trainer.fit(&mut model, &prep.train, &prep.val);
        let store = model.store();
        let mut bytes = Vec::new();
        for id in store.ids() {
            bytes.extend_from_slice(store.name(id).as_bytes());
            bytes.extend_from_slice(&store.value(id).to_bytes());
        }
        (bytes, ForecastMetrics::evaluate(&model, &prep.test, 64).mse)
    };
    for threads in [1usize, 4] {
        let (bytes, mse) = lip_par::with_threads(threads, train);
        assert_eq!(bytes.len(), 37563, "parameter inventory drifted ({threads} threads)");
        assert_eq!(
            fnv1a(&bytes),
            0xb30b_11c1_130d_44d5,
            "composed default training diverged from the pre-refactor monolith \
             ({threads} threads)"
        );
        assert_eq!(
            mse.to_bits(),
            0x3f6c_572f,
            "post-training test MSE diverged ({threads} threads)"
        );
    }
}

/// `with_stages(default)` and the stages-free constructor must build the
/// exact same model: identical parameter inventory and forward bytes.
#[test]
fn explicit_default_stages_equal_implicit_construction() {
    let (cfg_explicit, batch) = forward_fixture();
    let mut cfg_implicit = LiPFormerConfig::small(24, 8, 2);
    cfg_implicit.hidden = 16;
    cfg_implicit.encoder_hidden = 16;

    let param_bytes = |cfg: &LiPFormerConfig| {
        let model = LiPFormer::new(cfg.clone(), &spec(), 1234);
        let store = model.store();
        let mut bytes = Vec::new();
        for id in store.ids() {
            bytes.extend_from_slice(store.name(id).as_bytes());
            bytes.extend_from_slice(&store.value(id).to_bytes());
        }
        bytes
    };
    assert_eq!(
        param_bytes(&cfg_explicit),
        param_bytes(&cfg_implicit),
        "explicit default composition changed the parameter inventory"
    );
    assert_eq!(
        forward_bytes(&cfg_explicit, &batch),
        forward_bytes(&cfg_implicit, &batch),
        "explicit default composition changed the forward bytes"
    );
}

/// Every non-default registered composition is a genuinely different model:
/// same `[b, pred_len, c]` output shape, different logits.
#[test]
fn alternative_compositions_change_bytes_but_not_shapes() {
    let (cfg_default, batch) = forward_fixture();
    let default_bytes = forward_bytes(&cfg_default, &batch);
    for (label, stages) in registered_compositions() {
        let mut cfg = LiPFormerConfig::small(24, 8, 2).with_stages(stages);
        cfg.hidden = 16;
        cfg.encoder_hidden = 16;
        let model = LiPFormer::new(cfg.clone(), &spec(), 1234);
        let mut rng = StdRng::seed_from_u64(0);
        let mut g = lip_autograd::Graph::new(model.store());
        let y = model.forward(&mut g, &batch, false, &mut rng);
        assert_eq!(g.shape(y), &[4, 8, 2], "composition '{label}' broke the output shape");
        let bytes = g.value(y).to_bytes();
        if label == "default" {
            assert_eq!(bytes, default_bytes, "registered default drifted");
        } else {
            assert_ne!(
                bytes, default_bytes,
                "composition '{label}' should not reproduce the default model"
            );
        }
    }
}
