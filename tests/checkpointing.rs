//! Checkpoint/restore integration: binary tensor frames round-trip trained
//! models through disk with bit-exact predictions.

use lip_autograd::Graph;
use lip_data::pipeline::prepare;
use lip_data::{generate, CovariateSpec, DatasetName, GeneratorConfig};
use lip_tensor::Tensor;
use lipformer::checkpoint::{self, CheckpointError};
use lipformer::{Forecaster, LiPFormer, LiPFormerConfig, TrainConfig, Trainer};
use lip_rng::rngs::StdRng;
use lip_rng::SeedableRng;

/// Write a small valid checkpoint and return (path, file bytes).
fn valid_checkpoint(name: &str) -> (std::path::PathBuf, Vec<u8>) {
    let spec = CovariateSpec {
        numerical: 0,
        cardinalities: vec![],
        time_features: 4,
    };
    let mut cfg = LiPFormerConfig::small(24, 8, 2);
    cfg.hidden = 16;
    cfg.encoder_hidden = 16;
    let model = LiPFormer::new(cfg.clone(), &spec, 77);
    let dir = std::env::temp_dir().join("lipformer_ckpt_corruption");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    checkpoint::save(&path, &cfg, model.store()).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    (path, bytes)
}

#[test]
fn trained_model_roundtrips_through_disk() {
    let ds = generate(DatasetName::ETTh1, GeneratorConfig::test(81));
    let prep = prepare(&ds, 48, 12);
    let mut cfg = LiPFormerConfig::small(48, 12, prep.channels);
    cfg.hidden = 16;
    cfg.encoder_hidden = 16;
    let mut model = LiPFormer::new(cfg.clone(), &prep.spec, 81);
    let mut trainer = Trainer::new(TrainConfig {
        epochs: 1,
        pretrain_epochs: 1,
        ..TrainConfig::fast()
    });
    trainer.pretrain(&mut model, &prep.train);
    trainer.fit(&mut model, &prep.train, &prep.val);

    // write every parameter as a binary frame
    let dir = std::env::temp_dir().join("lipformer_ckpt_test");
    std::fs::create_dir_all(&dir).unwrap();
    let snapshot = model.store().snapshot();
    for (i, t) in snapshot.iter().enumerate() {
        std::fs::write(dir.join(format!("{i}.bin")), t.to_bytes()).unwrap();
    }

    // reload into a structurally identical fresh model
    let mut fresh = LiPFormer::new(cfg, &prep.spec, 999); // different init seed
    let restored: Vec<Tensor> = (0..snapshot.len())
        .map(|i| {
            let raw = std::fs::read(dir.join(format!("{i}.bin"))).unwrap();
            Tensor::from_bytes(&raw[..]).unwrap()
        })
        .collect();
    fresh.store_mut().restore(&restored);

    let batch = prep.test.batch(&[0, 1]);
    let predict = |m: &LiPFormer| {
        let mut rng = StdRng::seed_from_u64(0);
        let mut g = Graph::new(m.store());
        let y = m.forward(&mut g, &batch, false, &mut rng);
        g.value(y).clone()
    };
    assert_eq!(
        predict(&model),
        predict(&fresh),
        "restored model must predict identically"
    );
}

#[test]
fn corrupted_checkpoint_is_rejected() {
    let t = Tensor::arange(10);
    let mut raw = t.to_bytes().to_vec();
    raw.truncate(raw.len() - 3);
    assert!(Tensor::from_bytes(&raw[..]).is_err());
}

/// Truncating the file inside the JSON header must surface a clean
/// [`CheckpointError`], never a panic or a partial load.
#[test]
fn truncated_header_is_rejected_cleanly() {
    let (path, bytes) = valid_checkpoint("trunc_header.ckpt");
    // layout: magic:u32 | header_len:u32 | header JSON | frames.
    // Cut the file in the middle of the header JSON.
    let header_len =
        u32::from_le_bytes(bytes[4..8].try_into().unwrap()) as usize;
    assert!(header_len > 8, "test premise: header is non-trivial");
    let cut = 8 + header_len / 2;
    std::fs::write(&path, &bytes[..cut]).unwrap();
    let err = checkpoint::load(&path).expect_err("truncated header must fail");
    assert!(
        matches!(err, CheckpointError::Corrupt(_) | CheckpointError::Io(_)),
        "unexpected error kind: {err}"
    );
    std::fs::remove_file(&path).ok();
}

/// Garbling bytes inside the JSON header must yield `Corrupt`, not a panic.
#[test]
fn garbled_header_is_rejected_cleanly() {
    let (path, mut bytes) = valid_checkpoint("garbled_header.ckpt");
    let header_len =
        u32::from_le_bytes(bytes[4..8].try_into().unwrap()) as usize;
    // smash a run of bytes in the middle of the header JSON with invalid
    // UTF-8 / JSON noise
    let start = 8 + header_len / 3;
    for b in &mut bytes[start..start + (header_len / 3).max(1)] {
        *b = 0xFF;
    }
    std::fs::write(&path, &bytes).unwrap();
    let err = checkpoint::load(&path).expect_err("garbled header must fail");
    assert!(
        matches!(err, CheckpointError::Corrupt(_)),
        "expected Corrupt, got: {err}"
    );
    std::fs::remove_file(&path).ok();
}

/// A header length that claims more bytes than the file holds must be
/// rejected cleanly (no over-read, no panic).
#[test]
fn lying_header_length_is_rejected_cleanly() {
    let (path, mut bytes) = valid_checkpoint("lying_len.ckpt");
    bytes[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
    std::fs::write(&path, &bytes).unwrap();
    let err = checkpoint::load(&path).expect_err("lying header_len must fail");
    assert!(
        matches!(err, CheckpointError::Corrupt(_) | CheckpointError::Io(_)),
        "unexpected error kind: {err}"
    );
    std::fs::remove_file(&path).ok();
}

/// Full-file round trip through the real checkpoint API: load restores a
/// model that predicts bit-identically.
#[test]
fn checkpoint_api_roundtrips_bit_exactly() {
    let (path, _) = valid_checkpoint("roundtrip_api.ckpt");
    let (header, tensors) = checkpoint::load(&path).unwrap();
    assert_eq!(header.version, checkpoint::FORMAT_VERSION);
    assert!(
        header.stage_layout.is_some(),
        "a freshly saved checkpoint must carry its stage layout"
    );
    assert_eq!(header.param_names.len(), tensors.len());

    let spec = CovariateSpec {
        numerical: 0,
        cardinalities: vec![],
        time_features: 4,
    };
    // different init seed: restore must overwrite every parameter
    let mut fresh = LiPFormer::new(header.config.clone(), &spec, 123_456);
    checkpoint::restore_into(&header, &tensors, fresh.store_mut()).unwrap();
    let reference = LiPFormer::new(header.config.clone(), &spec, 77);
    assert_eq!(
        fresh.store().snapshot(),
        reference.store().snapshot(),
        "restored parameters must match the saved model exactly"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn snapshot_restore_checks_shapes() {
    let ds = generate(DatasetName::ETTh2, GeneratorConfig::test(82));
    let prep = prepare(&ds, 48, 12);
    let mut cfg = LiPFormerConfig::small(48, 12, prep.channels);
    cfg.hidden = 16;
    let model = LiPFormer::without_enriching(cfg.clone(), 1);
    // a snapshot from a *different architecture* must be rejected
    cfg.hidden = 32;
    let bigger = LiPFormer::without_enriching(cfg, 1);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut m = bigger;
        m.store_mut().restore(&model.store().snapshot());
    }));
    assert!(result.is_err(), "shape-mismatched restore must panic");
}
