//! Checkpoint/restore integration: binary tensor frames round-trip trained
//! models through disk with bit-exact predictions.

use lip_autograd::Graph;
use lip_data::pipeline::prepare;
use lip_data::{generate, DatasetName, GeneratorConfig};
use lip_tensor::Tensor;
use lipformer::{Forecaster, LiPFormer, LiPFormerConfig, TrainConfig, Trainer};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn trained_model_roundtrips_through_disk() {
    let ds = generate(DatasetName::ETTh1, GeneratorConfig::test(81));
    let prep = prepare(&ds, 48, 12);
    let mut cfg = LiPFormerConfig::small(48, 12, prep.channels);
    cfg.hidden = 16;
    cfg.encoder_hidden = 16;
    let mut model = LiPFormer::new(cfg.clone(), &prep.spec, 81);
    let mut trainer = Trainer::new(TrainConfig {
        epochs: 1,
        pretrain_epochs: 1,
        ..TrainConfig::fast()
    });
    trainer.pretrain(&mut model, &prep.train);
    trainer.fit(&mut model, &prep.train, &prep.val);

    // write every parameter as a binary frame
    let dir = std::env::temp_dir().join("lipformer_ckpt_test");
    std::fs::create_dir_all(&dir).unwrap();
    let snapshot = model.store().snapshot();
    for (i, t) in snapshot.iter().enumerate() {
        std::fs::write(dir.join(format!("{i}.bin")), t.to_bytes()).unwrap();
    }

    // reload into a structurally identical fresh model
    let mut fresh = LiPFormer::new(cfg, &prep.spec, 999); // different init seed
    let restored: Vec<Tensor> = (0..snapshot.len())
        .map(|i| {
            let raw = std::fs::read(dir.join(format!("{i}.bin"))).unwrap();
            Tensor::from_bytes(&raw[..]).unwrap()
        })
        .collect();
    fresh.store_mut().restore(&restored);

    let batch = prep.test.batch(&[0, 1]);
    let predict = |m: &LiPFormer| {
        let mut rng = StdRng::seed_from_u64(0);
        let mut g = Graph::new(m.store());
        let y = m.forward(&mut g, &batch, false, &mut rng);
        g.value(y).clone()
    };
    assert_eq!(
        predict(&model),
        predict(&fresh),
        "restored model must predict identically"
    );
}

#[test]
fn corrupted_checkpoint_is_rejected() {
    let t = Tensor::arange(10);
    let mut raw = t.to_bytes().to_vec();
    raw.truncate(raw.len() - 3);
    assert!(Tensor::from_bytes(&raw[..]).is_err());
}

#[test]
fn snapshot_restore_checks_shapes() {
    let ds = generate(DatasetName::ETTh2, GeneratorConfig::test(82));
    let prep = prepare(&ds, 48, 12);
    let mut cfg = LiPFormerConfig::small(48, 12, prep.channels);
    cfg.hidden = 16;
    let model = LiPFormer::without_enriching(cfg.clone(), 1);
    // a snapshot from a *different architecture* must be rejected
    cfg.hidden = 32;
    let bigger = LiPFormer::without_enriching(cfg, 1);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut m = bigger;
        m.store_mut().restore(&model.store().snapshot());
    }));
    assert!(result.is_err(), "shape-mismatched restore must panic");
}
