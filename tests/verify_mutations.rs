//! Seeded-mutation tests for the static schedule verifier: take a real,
//! verified-clean `InferenceSchedule`, corrupt exactly one invariant, and
//! require the verifier to (a) notice and (b) classify the violation under
//! the intended checker class. This is the verifier's own regression
//! harness — a checker that silently stops firing fails here, not in
//! production.

use std::ops::Range;

use lip_analyze::plan::plan_forward_loss;
use lip_analyze::verify::{
    audit_kernel_source, check_chunk_ranges, verify_schedule, CheckClass, VerifyFinding,
};
use lip_analyze::{InferenceSchedule, Storage, SymDim};
use lip_data::CovariateSpec;
use lipformer::LiPFormerConfig;

fn implicit_spec() -> CovariateSpec {
    CovariateSpec {
        numerical: 0,
        cardinalities: vec![],
        time_features: 4,
    }
}

/// A clean plan + fused schedule pair the mutations start from.
fn clean_pair() -> (lip_analyze::ForwardPlan, InferenceSchedule) {
    let config = LiPFormerConfig::small(48, 24, 3);
    let plan = plan_forward_loss(&config, &implicit_spec(), false).unwrap();
    let sched = InferenceSchedule::build(&plan).unwrap();
    assert!(
        verify_schedule(&plan, &sched).is_empty(),
        "baseline schedule must verify clean before mutation"
    );
    (plan, sched)
}

fn has_class(findings: &[VerifyFinding], class: CheckClass) -> bool {
    findings.iter().any(|f| f.class == class)
}

fn classes(findings: &[VerifyFinding]) -> Vec<CheckClass> {
    findings.iter().map(|f| f.class).collect()
}

/// Mutation: shrink every size candidate of a pooled slot to zero. The
/// write-span check must prove the output no longer fits for all B ≥ 1.
#[test]
fn shrunk_slot_is_an_arena_bounds_finding() {
    let (plan, mut sched) = clean_pair();
    let victim = sched
        .steps
        .iter()
        .find_map(|s| match s.storage {
            Storage::Slot(id) => Some(id),
            _ => None,
        })
        .expect("schedule has at least one pooled slot");
    sched.slot_sizes[victim] = vec![SymDim { per_batch: 0, fixed: 0 }];
    let findings = verify_schedule(&plan, &sched);
    assert!(
        has_class(&findings, CheckClass::ArenaBounds),
        "shrunk slot {victim} must be an arena-bounds finding, got {:?}",
        classes(&findings)
    );
}

/// Mutation: trade one unit of a slot's per-batch slope for one fixed
/// element. The slot still fits at `B = 1` — the batch size a dynamic
/// smoke test would use — but underflows at every `B ≥ 2`. The for-all-B
/// domination rule must object even though a concrete check would pass.
#[test]
fn slot_that_only_fits_b1_is_an_arena_bounds_finding() {
    let (plan, mut sched) = clean_pair();
    let victim = sched
        .slot_sizes
        .iter()
        .position(|cands| cands.iter().any(|c| c.per_batch >= 1 && c.fixed == 0))
        .expect("some slot holds a batch-scaled value");
    let per_batch = sched.slot_sizes[victim]
        .iter()
        .find(|c| c.per_batch >= 1 && c.fixed == 0)
        .unwrap()
        .per_batch;
    // (p-1)*B + 1 == p*B at B = 1, but < p*B for every B >= 2
    sched.slot_sizes[victim] = vec![SymDim { per_batch: per_batch - 1, fixed: 1 }];
    let findings = verify_schedule(&plan, &sched);
    assert!(
        has_class(&findings, CheckClass::ArenaBounds),
        "slot {victim} fits only at B = 1; must be an arena-bounds finding, got {:?}",
        classes(&findings)
    );
}

/// Mutation: hoist a `dies_after` entry one step earlier than the
/// scheduler placed it. Freeing before last use is a liveness violation —
/// either the free site disagrees with actual liveness or a later step
/// reads a freed slot.
#[test]
fn premature_dies_after_is_a_liveness_finding() {
    let (plan, mut sched) = clean_pair();
    let k = sched
        .steps
        .iter()
        .position(|s| !s.dies_after.is_empty())
        .expect("schedule frees at least one slot");
    assert!(k > 0, "first free cannot be the first step");
    let slot = sched.steps[k].dies_after.remove(0);
    sched.steps[k - 1].dies_after.push(slot);
    let findings = verify_schedule(&plan, &sched);
    assert!(
        has_class(&findings, CheckClass::Liveness),
        "hoisted free of slot {slot} must be a liveness finding, got {:?}",
        classes(&findings)
    );
}

/// Mutation: drop a `dies_after` entirely. The slot leaks — still live at
/// the end of the schedule without pred reading it.
#[test]
fn dropped_dies_after_is_a_liveness_finding() {
    let (plan, mut sched) = clean_pair();
    let k = sched
        .steps
        .iter()
        .position(|s| !s.dies_after.is_empty())
        .expect("schedule frees at least one slot");
    let slot = sched.steps[k].dies_after.remove(0);
    let findings = verify_schedule(&plan, &sched);
    assert!(
        has_class(&findings, CheckClass::Liveness),
        "leaked slot {slot} must be a liveness finding, got {:?}",
        classes(&findings)
    );
}

/// Mutation: swap a producer behind its consumer. The consumer now reads a
/// node no prior step has defined — def-before-use.
#[test]
fn reordered_steps_are_a_def_before_use_finding() {
    let (plan, mut sched) = clean_pair();
    // find a consumer step j whose input is produced by a pooled step i < j
    let mut swap = None;
    'outer: for j in 0..sched.steps.len() {
        for &inp in &sched.steps[j].inputs {
            if let Some(i) = sched.steps[..j].iter().position(|s| {
                s.node == inp && matches!(s.storage, Storage::Slot(_))
            }) {
                swap = Some((i, j));
                break 'outer;
            }
        }
    }
    let (i, j) = swap.expect("some step consumes a pooled producer");
    sched.steps.swap(i, j);
    let findings = verify_schedule(&plan, &sched);
    assert!(
        has_class(&findings, CheckClass::DefBeforeUse),
        "swapping steps {i} and {j} must be a def-before-use finding, got {:?}",
        classes(&findings)
    );
}

/// Mutation: relabel a fused stage as a non-fusable op. The independent
/// legality re-derivation must reject the chain even though the scheduler
/// emitted it.
#[test]
fn illegal_fused_stage_op_is_a_fusion_legality_finding() {
    let (plan, mut sched) = clean_pair();
    let k = sched
        .steps
        .iter()
        .position(|s| !s.fused.is_empty())
        .expect("fused schedule has at least one chain");
    sched.steps[k].fused[0].op = "Softmax";
    let findings = verify_schedule(&plan, &sched);
    assert!(
        has_class(&findings, CheckClass::FusionLegality),
        "non-fusable stage op must be a fusion-legality finding, got {:?}",
        classes(&findings)
    );
}

/// Mutation: splice a foreign node into a fused chain. The chain-wiring
/// check (each stage's plan input is the previous link) must fire.
#[test]
fn spliced_fused_chain_is_a_fusion_legality_finding() {
    let (plan, mut sched) = clean_pair();
    let k = sched
        .steps
        .iter()
        .position(|s| !s.fused.is_empty())
        .expect("fused schedule has at least one chain");
    // point the stage at a different plan node of the same op if one
    // exists; otherwise at node 0 (a leaf — certainly not chain-wired)
    let old = sched.steps[k].fused[0].node;
    sched.steps[k].fused[0].node = if old == 0 { 1 } else { 0 };
    let findings = verify_schedule(&plan, &sched);
    assert!(
        has_class(&findings, CheckClass::FusionLegality),
        "spliced chain at step {k} must be a fusion-legality finding, got {:?}",
        classes(&findings)
    );
}

/// Mutation: overlapping / gapped / short partitions. Each malformed range
/// set is a partition-disjointness finding, and a correct set is not.
#[test]
fn corrupted_partitions_are_partition_disjoint_findings() {
    let good: Vec<Range<usize>> = vec![0..10, 10..20, 20..25];
    assert!(check_chunk_ranges(25, &good).is_empty());

    let overlapping: Vec<Range<usize>> = vec![0..12, 10..20, 20..25];
    let gapped: Vec<Range<usize>> = vec![0..10, 12..20, 20..25];
    let short: Vec<Range<usize>> = vec![0..10, 10..20];
    for (label, bad) in [("overlap", overlapping), ("gap", gapped), ("short", short)] {
        let findings = check_chunk_ranges(25, &bad);
        assert!(
            !findings.is_empty() && findings.iter().all(|f| f.class == CheckClass::PartitionDisjoint),
            "{label}: expected only partition-disjoint findings, got {:?}",
            classes(&findings)
        );
    }
}

/// Mutation: plant forbidden constructs in audited kernel source. Each
/// escape hatch is a kernel-audit finding; clean chunked code is not.
#[test]
fn planted_kernel_escapes_are_kernel_audit_findings() {
    let clean = "pub fn relu(xs: &mut [f32]) {\n    par_chunks_mut(xs, |c| c.iter_mut().for_each(|x| *x = x.max(0.0)));\n}\n";
    let (sites, findings) = audit_kernel_source("clean.rs", clean);
    assert_eq!(sites, 1);
    assert!(findings.is_empty(), "clean kernel must audit clean: {:?}", classes(&findings));

    for (label, planted) in [
        ("unsafe", "fn f(xs: &mut [f32]) { unsafe { xs.get_unchecked_mut(0); } }\n"),
        ("raw thread", "fn f() { std::thread::spawn(|| {}); }\n"),
        ("pool bypass", "fn f(xs: &mut [f32]) { for_each_chunk(xs, |_| {}); }\n"),
    ] {
        let (_, findings) = audit_kernel_source("planted.rs", planted);
        assert!(
            !findings.is_empty() && findings.iter().all(|f| f.class == CheckClass::KernelAudit),
            "{label}: expected only kernel-audit findings, got {:?}",
            classes(&findings)
        );
    }
}
