//! Integration tests of the weak-data-enriching pathway: contrastive
//! pre-training aligns the dual encoders (Figure 7's diagonal), freezing
//! semantics hold, and the plugin transplant works end to end.

use lip_data::pipeline::prepare;
use lip_data::{generate, DatasetName, GeneratorConfig};
use lip_eval::heatmap::diagonal_dominance;
use lipformer::{
    Forecaster, LiPFormer, LiPFormerConfig, TrainConfig, Trainer, WeaklySupervised,
    WithCovariateEncoder,
};

fn setup(dataset: DatasetName, seed: u64) -> (LiPFormer, lip_data::pipeline::PreparedData) {
    let ds = generate(dataset, GeneratorConfig::test(seed));
    let prep = prepare(&ds, 48, 12);
    let mut cfg = LiPFormerConfig::small(48, 12, prep.channels);
    cfg.hidden = 16;
    cfg.encoder_hidden = 16;
    (LiPFormer::new(cfg, &prep.spec, seed), prep)
}

#[test]
fn pretraining_aligns_the_dual_encoders() {
    let (mut model, prep) = setup(DatasetName::ElectriPrice, 61);
    let batch_idx: Vec<usize> = (0..48.min(prep.train.len())).collect();
    let batch = prep.train.batch(&batch_idx);

    let before = diagonal_dominance(&model.logits_matrix(&batch));
    let mut trainer = Trainer::new(TrainConfig {
        epochs: 0,
        pretrain_epochs: 4,
        batch_size: 48,
        lr: 5e-3,
        ..TrainConfig::fast()
    });
    let losses = trainer.pretrain(&mut model, &prep.train);
    let after = diagonal_dominance(&model.logits_matrix(&batch));

    assert!(
        losses.last().unwrap() < losses.first().unwrap(),
        "contrastive loss must fall: {losses:?}"
    );
    assert!(
        after > before,
        "diagonal dominance must grow: {before} → {after}"
    );
    assert!(after > 0.0, "true pairs should out-score negatives: {after}");
}

#[test]
fn pretrain_freezes_encoders_but_not_mapping_or_base() {
    let (mut model, prep) = setup(DatasetName::Cycle, 62);
    let before = model.num_parameters();
    let mut trainer = Trainer::new(TrainConfig {
        epochs: 0,
        pretrain_epochs: 1,
        ..TrainConfig::fast()
    });
    trainer.pretrain(&mut model, &prep.train);
    let after = model.num_parameters();
    assert!(after < before, "freeze must reduce trainable scalars");
    // base predictor + vector mapping remain trainable
    assert!(after > 0);

    // frozen encoders stay fixed through prediction training
    let snapshot = model.store().snapshot();
    let mut trainer2 = Trainer::new(TrainConfig {
        epochs: 1,
        pretrain_epochs: 0,
        ..TrainConfig::fast()
    });
    trainer2.fit(&mut model, &prep.train, &prep.val);
    let mut frozen_unchanged = 0usize;
    let mut trainable_changed = 0usize;
    for (i, id) in model.store().ids().enumerate().collect::<Vec<_>>() {
        let now = model.store().value(id);
        let was = &snapshot[i];
        let same = now.sub(was).abs().max_value() < 1e-9;
        if model.store().is_frozen(id) {
            assert!(same, "frozen param {i} moved during fit");
            frozen_unchanged += 1;
        } else if !same {
            trainable_changed += 1;
        }
    }
    assert!(frozen_unchanged > 0, "some params must be frozen");
    assert!(trainable_changed > 0, "training must move the rest");
}

#[test]
fn implicit_features_used_when_no_explicit_covariates() {
    let (model, prep) = setup(DatasetName::ETTh2, 63);
    // batches of a non-covariate dataset have no explicit weak labels…
    let batch = prep.train.batch(&[0, 1, 2, 3]);
    assert!(batch.cov_numerical.is_none());
    // …yet the contrastive loss is computable from the time features
    let mut g = lip_autograd::Graph::new(model.store());
    let loss = model.contrastive_loss(&mut g, &batch);
    assert!(g.value(loss).item().is_finite());
}

#[test]
fn plugin_transplant_trains_end_to_end() {
    let ds = generate(DatasetName::ElectriPrice, GeneratorConfig::test(64));
    let prep = prepare(&ds, 48, 12);
    let host: Box<dyn Forecaster> = Box::new(lip_baselines::DLinear::new(48, 12, prep.channels, 64));
    let mut wrapped = WithCovariateEncoder::new(host, &prep.spec, 12, prep.channels, 16, 64);
    let mut trainer = Trainer::new(TrainConfig {
        epochs: 2,
        pretrain_epochs: 1,
        ..TrainConfig::fast()
    });
    trainer.pretrain(&mut wrapped, &prep.train);
    let report = trainer.fit(&mut wrapped, &prep.train, &prep.val);
    assert!(report.best_val_loss.is_finite());
    assert_eq!(wrapped.name(), "DLinear+CovEnc");
}
