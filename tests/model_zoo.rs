//! Integration coverage of the full model zoo: every forecaster trains on
//! the same smoke benchmark, produces finite metrics, and the efficiency
//! relationships the paper claims hold on this substrate.

use lip_data::DatasetName;
use lip_eval::runner::{prepare_dataset, run_prepared, RunSpec};
use lip_eval::{ModelKind, RunScale};

const ALL_KINDS: [ModelKind; 10] = [
    ModelKind::LiPFormer,
    ModelKind::ITransformer,
    ModelKind::TimeMixer,
    ModelKind::Fgnn,
    ModelKind::PatchTst,
    ModelKind::DLinear,
    ModelKind::Tide,
    ModelKind::Transformer,
    ModelKind::Informer,
    ModelKind::Autoformer,
];

#[test]
fn all_models_train_on_the_same_benchmark() {
    let scale = RunScale::smoke(51);
    let h = scale.horizons[0];
    let (_, prep) = prepare_dataset(DatasetName::ETTh1, &scale, h, false);
    for kind in ALL_KINDS {
        let spec = RunSpec {
            kind,
            dataset: DatasetName::ETTh1,
            pred_len: h,
            univariate: false,
        };
        let r = run_prepared(&spec, &scale, &prep);
        assert!(
            r.mse.is_finite() && r.mse > 0.0,
            "{kind:?}: mse {}",
            r.mse
        );
        assert!(r.eff.inference_s > 0.0, "{kind:?}: timing");
    }
}

#[test]
fn lightweight_claims_hold_on_efficiency_metrics() {
    // paper Challenge 1: LiPFormer ≪ Transformer in MACs and params; the
    // patch factor drives the gap
    let scale = RunScale::smoke(52);
    let h = scale.horizons[0];
    let (_, prep) = prepare_dataset(DatasetName::ETTh1, &scale, h, false);
    let run = |kind| {
        run_prepared(
            &RunSpec {
                kind,
                dataset: DatasetName::ETTh1,
                pred_len: h,
                univariate: false,
            },
            &scale,
            &prep,
        )
    };
    let lip = run(ModelKind::LiPFormer);
    let tf = run(ModelKind::Transformer);
    let patch = run(ModelKind::PatchTst);
    let dlinear = run(ModelKind::DLinear);

    assert!(
        lip.eff.macs < tf.eff.macs / 2,
        "LiPFormer MACs {} should be far below Transformer {}",
        lip.eff.macs,
        tf.eff.macs
    );
    assert!(
        lip.eff.params < patch.eff.params,
        "LiPFormer params {} should undercut PatchTST {} (no LN/FFN/PE)",
        lip.eff.params,
        patch.eff.params
    );
    assert!(
        dlinear.eff.macs < lip.eff.macs,
        "DLinear stays the cheapest (paper: 'DLinear slightly leads in efficiency')"
    );
}

#[test]
fn univariate_protocol_runs_for_all_models() {
    let scale = RunScale::smoke(53);
    let h = scale.horizons[0];
    let (_, prep) = prepare_dataset(DatasetName::ETTm1, &scale, h, true);
    assert_eq!(prep.channels, 1);
    for kind in [ModelKind::LiPFormer, ModelKind::PatchTst, ModelKind::DLinear] {
        let r = run_prepared(
            &RunSpec {
                kind,
                dataset: DatasetName::ETTm1,
                pred_len: h,
                univariate: true,
            },
            &scale,
            &prep,
        );
        assert!(r.mse.is_finite(), "{kind:?}");
    }
}

#[test]
fn ablation_variants_change_parameter_counts() {
    use lip_data::CovariateSpec;
    use lipformer::{Forecaster, LiPFormer, LiPFormerConfig};
    let spec = CovariateSpec {
        numerical: 0,
        cardinalities: vec![],
        time_features: 4,
    };
    let base = LiPFormer::new(LiPFormerConfig::small(48, 12, 2), &spec, 0).num_parameters();
    let ffn =
        LiPFormer::new(LiPFormerConfig::small(48, 12, 2).with_ffns(), &spec, 0).num_parameters();
    let ln = LiPFormer::new(LiPFormerConfig::small(48, 12, 2).with_ln(), &spec, 0).num_parameters();
    assert!(ffn > base, "+FFNs adds weight");
    assert!(ln > base, "+LN adds γ/β");
    assert!(ffn - base > ln - base, "FFNs are the heavier component");
}
