//! Integration tests for `lip-analyze`: the symbolic plan must match the
//! recorded runtime graphs node-for-node across every synthetic benchmark,
//! planted defects (dead params, detached subgraphs, reused dropout masks,
//! NaN injections) must be caught, and inconsistent configurations must be
//! rejected before any tensor kernel runs.

use lip_analyze::harness::{check_model, synthetic_batch};
use lip_analyze::infer::validate_graph;
use lip_analyze::lint::{lint_graphs, LintKind};
use lip_analyze::plan::{plan_contrastive, plan_forward_loss, validate_config};
use lip_analyze::sym::eval_shape;
use lip_autograd::Graph;
use lipformer::analysis::{batch_contract, record_contrastive, record_forward_loss};
use lipformer::{Forecaster, LiPFormer, LiPFormerConfig};
use lip_data::pipeline::prepare;
use lip_data::{generate, CovariateSpec, DatasetName, GeneratorConfig};
use lip_tensor::Tensor;

const B: usize = 3;

fn implicit_spec() -> CovariateSpec {
    CovariateSpec {
        numerical: 0,
        cardinalities: vec![],
        time_features: 4,
    }
}

/// Assert plan ↔ runtime parity for every node: op name, concrete shape at
/// batch size `b`, and the MAC total.
fn assert_parity(tape: &lip_analyze::SymTape, g: &Graph, b: usize, label: &str) {
    assert_eq!(tape.len(), g.len(), "{label}: node count");
    for i in 0..g.len() {
        let planned = &tape.nodes()[i];
        assert_eq!(
            planned.op,
            g.op_at(i).name(),
            "{label}: op at node {i}"
        );
        assert_eq!(
            eval_shape(&planned.shape, b),
            g.shape_at(i),
            "{label}: shape at node {i} ({})",
            planned.op
        );
    }
    assert_eq!(
        tape.macs().eval(b as u64),
        g.macs(),
        "{label}: MAC total at B={b}"
    );
}

#[test]
fn plan_matches_runtime_across_all_nine_benchmarks() {
    for name in DatasetName::all() {
        let ds = generate(name, GeneratorConfig::test(3));
        let prep = prepare(&ds, 48, 24);
        let config = LiPFormerConfig::small(48, 24, prep.channels);
        let model = LiPFormer::new(config.clone(), &prep.spec, 5);
        let indices: Vec<usize> = (0..B).collect();
        let batch = prep.train.batch(&indices);
        batch_contract(&config, &prep.spec).check(&batch).unwrap();

        let label = format!("{name:?}/forecast");
        let (g, pred, loss) =
            record_forward_loss(&model, &batch, config.smooth_l1_beta, true, 9);
        let summary = validate_graph(&g).unwrap_or_else(|v| {
            panic!("{label}: recorded tape has violations: {v:?}")
        });
        assert_eq!(summary.macs, g.macs(), "{label}: recomputed MACs");

        let plan = plan_forward_loss(&config, &prep.spec, true).unwrap();
        assert_parity(&plan.tape, &g, B, &label);
        assert_eq!(plan.pred.0, pred.index(), "{label}: pred node index");
        assert_eq!(plan.loss.0, loss.index(), "{label}: loss node index");

        let label = format!("{name:?}/contrastive");
        let (gc, closs) = record_contrastive(&model, &batch);
        validate_graph(&gc).unwrap_or_else(|v| {
            panic!("{label}: recorded tape has violations: {v:?}")
        });
        let cplan = plan_contrastive(&config, &prep.spec).unwrap();
        assert_parity(&cplan.tape, &gc, B, &label);
        assert_eq!(cplan.loss.0, closs.index(), "{label}: loss node index");
    }
}

#[test]
fn plan_matches_runtime_for_every_architecture_variant() {
    let spec = implicit_spec();
    let mut variants: Vec<(LiPFormerConfig, &str)> = Vec::new();
    let base = LiPFormerConfig::small(48, 24, 2);
    variants.push((base.clone(), "base/train"));
    let mut v = base.clone();
    v.with_layer_norm = true;
    v.with_ffn = true;
    variants.push((v, "layernorm+ffn"));
    let mut v = base.clone();
    v.use_cross_patch = false;
    variants.push((v, "no-cross-patch"));
    let mut v = base.clone();
    v.use_inter_patch = false;
    variants.push((v, "no-inter-patch"));

    for (config, label) in &variants {
        for training in [false, true] {
            let model = LiPFormer::new(config.clone(), &spec, 5);
            let batch = synthetic_batch(config, &spec, B);
            let (g, _pred, _loss) =
                record_forward_loss(&model, &batch, config.smooth_l1_beta, training, 13);
            validate_graph(&g).unwrap_or_else(|v| {
                panic!("{label}(training={training}): violations: {v:?}")
            });
            let plan = plan_forward_loss(config, &spec, training).unwrap();
            assert_parity(&plan.tape, &g, B, &format!("{label}(training={training})"));
        }
    }
}

#[test]
fn check_model_is_clean_for_all_nine_benchmarks() {
    for name in DatasetName::all() {
        let ds = generate(name, GeneratorConfig::test(3));
        let prep = prepare(&ds, 48, 24);
        let config = LiPFormerConfig::small(48, 24, prep.channels);
        let indices: Vec<usize> = (0..B).collect();
        let batch = prep.train.batch(&indices);
        let report = check_model(&config, &prep.spec, &batch, &format!("{name:?}"));
        assert!(
            report.clean(),
            "{name:?}: unexpected findings {:#?}",
            report.findings
        );
        assert!(report.forward_nodes > 0 && report.contrastive_nodes > 0);
    }
}

#[test]
fn off_by_one_patch_len_is_rejected_before_any_kernel() {
    let mut config = LiPFormerConfig::small(48, 24, 2);
    config.patch_len += 1; // 48 % 7 != 0 — the runtime would panic in validate()
    let err = validate_config(&config).unwrap_err();
    assert_eq!(err.stage, "config");
    assert!(err.message.contains("evenly divide"), "{}", err.message);

    // The harness surfaces the same rejection as a finding, without ever
    // constructing the model (no tensor is allocated, nothing panics).
    let spec = implicit_spec();
    let good = LiPFormerConfig::small(48, 24, 2);
    let batch = synthetic_batch(&good, &spec, 2);
    let report = check_model(&config, &spec, &batch, "bad-patch");
    assert!(!report.clean());
    assert!(
        report.findings[0].contains("plan rejected at config"),
        "{:?}",
        report.findings
    );
}

#[test]
fn planted_dead_param_and_detached_subgraph_are_flagged() {
    let spec = implicit_spec();
    let config = LiPFormerConfig::small(48, 24, 2);
    let mut model = LiPFormer::new(config.clone(), &spec, 5);
    model
        .store_mut()
        .add("planted.orphan", Tensor::ones(&[4, 4]));
    let batch = synthetic_batch(&config, &spec, 2);

    let (g, _pred, loss) =
        record_forward_loss(&model, &batch, config.smooth_l1_beta, false, 9);
    let (gc, closs) = record_contrastive(&model, &batch);

    // A healthy pair of tapes flags exactly the orphan and nothing else.
    let findings = lint_graphs(&[(&g, loss, "forecast"), (&gc, closs, "contrastive")]);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].kind, LintKind::DeadParam);
    assert!(findings[0].message.contains("planted.orphan"));

    // Now plant a detached branch: forward work that never feeds the loss.
    let (mut g, pred2, loss2) =
        record_forward_loss(&model, &batch, config.smooth_l1_beta, false, 9);
    let dangling = g.relu(pred2);
    let findings = lint_graphs(&[(&g, loss2, "forecast"), (&gc, closs, "contrastive")]);
    let detached: Vec<_> = findings
        .iter()
        .filter(|f| f.kind == LintKind::DetachedSubgraph)
        .collect();
    assert_eq!(detached.len(), 1, "{findings:?}");
    assert_eq!(detached[0].node, Some(dangling.index()));
}

#[test]
fn injected_nan_is_pinned_to_the_producing_op_with_provenance() {
    let spec = implicit_spec();
    let config = LiPFormerConfig::small(48, 24, 2);
    let mut model = LiPFormer::new(config.clone(), &spec, 5);

    // Poison the contrastive temperature: exp(1e9) overflows to +Inf, so the
    // Exp node is the *producer* (its Param input is still finite).
    let log_temp = model
        .store()
        .ids()
        .find(|&id| model.store().name(id).ends_with("log_temp"))
        .expect("model must own a log_temp parameter");
    model.store_mut().set_value(log_temp, Tensor::scalar(1e9));

    let batch = synthetic_batch(&config, &spec, 2);
    let (g, _loss) = record_contrastive(&model, &batch);
    let reports = g.sanitizer_reports();
    assert!(!reports.is_empty(), "sanitizer must fire");
    let r = &reports[0];
    assert_eq!(r.op, "Exp", "eruption site is the exponent");
    assert!(r.shape.is_empty(), "temperature is a scalar");
    assert_eq!(r.provenance[0].op, "Param", "provenance walks to the parameter");
    assert!(r.provenance[0].finite, "the parameter itself was finite");
    // Downstream nodes inherit the poison but are not re-reported.
    assert_eq!(reports.len(), 1, "{reports:?}");
}

#[test]
fn dropout_mask_reuse_and_rank_promotion_are_linted() {
    let store = lip_autograd::ParamStore::new();
    let mut g = Graph::new(&store);
    let x = g.constant(Tensor::ones(&[2, 3, 4]));

    // Reused mask: both dropout sites share one storage.
    let mask = Tensor::from_vec(vec![2.0; 24], &[2, 3, 4]);
    let d1 = g.dropout_mask(x, mask.clone());
    let d2 = g.dropout_mask(d1, mask);

    // Silent rank promotion: [3, 1] is not a trailing suffix of [2, 3, 4].
    let odd = g.constant(Tensor::ones(&[3, 1]));
    let promoted = g.mul(d2, odd);
    let loss = g.mean(promoted);

    let findings = lint_graphs(&[(&g, loss, "test")]);
    assert!(findings
        .iter()
        .any(|f| f.kind == LintKind::DropoutMaskReuse && f.node == Some(d2.index())));
    assert!(findings
        .iter()
        .any(|f| f.kind == LintKind::SuspiciousBroadcast && f.node == Some(promoted.index())));
}

#[test]
fn batch_contract_violations_are_findings_not_panics() {
    let spec = implicit_spec();
    let config = LiPFormerConfig::small(48, 24, 2);
    let wrong = LiPFormerConfig::small(96, 24, 2);
    let batch = synthetic_batch(&wrong, &spec, 2); // seq_len 96 ≠ 48
    let report = check_model(&config, &spec, &batch, "bad-batch");
    assert!(!report.clean());
    assert!(
        report.findings.iter().any(|f| f.contains("batch contract")),
        "{:?}",
        report.findings
    );
}
