//! End-to-end integration: every benchmark flows through generation →
//! preparation → LiPFormer training → evaluation, and the trained model
//! beats the naive last-value forecaster.

use lip_data::pipeline::prepare;
use lip_data::{generate, DatasetName};
use lip_eval::runner::{prepare_dataset, run_prepared, RunSpec};
use lip_eval::{ModelKind, RunScale};
use lipformer::{ForecastMetrics, LiPFormer, LiPFormerConfig, TrainConfig, Trainer};

#[test]
fn every_benchmark_trains_and_evaluates() {
    let scale = RunScale::smoke(41);
    for dataset in DatasetName::all() {
        let spec = RunSpec {
            kind: ModelKind::LiPFormer,
            dataset,
            pred_len: scale.horizons[0],
            univariate: false,
        };
        let r = lip_eval::run_one(&spec, &scale);
        assert!(r.mse.is_finite() && r.mse > 0.0, "{dataset:?} mse {}", r.mse);
        assert!(r.mae.is_finite() && r.mae > 0.0, "{dataset:?} mae {}", r.mae);
        assert!(r.eff.macs > 0 && r.eff.params > 0, "{dataset:?} efficiency");
    }
}

#[test]
fn trained_lipformer_beats_naive_forecaster() {
    let scale = RunScale::smoke(42);
    let (_, prep) = prepare_dataset(DatasetName::ETTh1, &scale, 24, false);

    // naive: repeat the last observed value
    let idx: Vec<usize> = (0..prep.test.len()).collect();
    let batch = prep.test.batch(&idx);
    let (b, t, c) = (
        batch.x.shape()[0],
        batch.x.shape()[1],
        batch.x.shape()[2],
    );
    let naive = batch.x.slice_axis(1, t - 1, t).broadcast_to(&[b, 24, c]);
    let naive_mse = naive.sub(&batch.y).square().mean().item();

    let mut scale2 = scale.clone();
    scale2.train.epochs = 6;
    scale2.train.lr = 1e-2;
    let spec = RunSpec {
        kind: ModelKind::LiPFormer,
        dataset: DatasetName::ETTh1,
        pred_len: 24,
        univariate: false,
    };
    let r = run_prepared(&spec, &scale2, &prep);
    assert!(
        r.mse < naive_mse * 0.9,
        "LiPFormer {} should beat naive {naive_mse}",
        r.mse
    );
}

#[test]
fn training_protocol_reports_are_consistent() {
    let ds = generate(DatasetName::ETTm2, lip_data::GeneratorConfig::test(43));
    let prep = prepare(&ds, 48, 12);
    let mut cfg = LiPFormerConfig::small(48, 12, prep.channels);
    cfg.hidden = 16;
    cfg.encoder_hidden = 16;
    let mut model = LiPFormer::new(cfg, &prep.spec, 43);
    let mut trainer = Trainer::new(TrainConfig {
        epochs: 3,
        pretrain_epochs: 2,
        batch_size: 32,
        ..TrainConfig::fast()
    });
    let pre = trainer.pretrain(&mut model, &prep.train);
    let report = trainer.fit(&mut model, &prep.train, &prep.val);
    assert_eq!(pre.len(), 2);
    assert_eq!(report.pretrain_losses, pre);
    assert_eq!(report.train_losses.len(), report.epochs_run);
    assert_eq!(report.val_losses.len(), report.epochs_run);
    assert_eq!(report.epoch_seconds.len(), report.epochs_run);
    assert!(report.best_epoch < report.epochs_run);
    // the best val loss is genuinely the minimum observed
    let min_val = report
        .val_losses
        .iter()
        .copied()
        .fold(f32::INFINITY, f32::min);
    assert!((report.best_val_loss - min_val).abs() < 1e-6);
    // and evaluating the restored model reproduces it
    let again = ForecastMetrics::evaluate(&model, &prep.val, 32);
    assert!((again.mse - report.best_val_loss).abs() < 1e-4);
}

#[test]
fn covariate_dataset_flows_through_lipformer() {
    let scale = RunScale::smoke(44);
    let (ds, prep) = prepare_dataset(DatasetName::Cycle, &scale, scale.horizons[0], false);
    assert!(ds.covariates.is_some());
    assert!(prep.spec.has_explicit());
    let spec = RunSpec {
        kind: ModelKind::LiPFormer,
        dataset: DatasetName::Cycle,
        pred_len: scale.horizons[0],
        univariate: false,
    };
    let r = run_prepared(&spec, &scale, &prep);
    assert!(r.mse.is_finite());
}
