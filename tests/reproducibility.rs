//! Determinism guarantees: the whole stack — generation, batching, dropout,
//! training — is a pure function of the seeds.

use lip_data::pipeline::prepare;
use lip_data::window::Batch;
use lip_data::{generate, CovariateSpec, DatasetName, GeneratorConfig};
use lip_eval::runner::{run_one, RunSpec};
use lip_eval::{ModelKind, RunScale};
use lip_rng::rngs::StdRng;
use lip_rng::SeedableRng;
use lip_tensor::Tensor;
use lipformer::{Forecaster, ForecastMetrics, LiPFormer, LiPFormerConfig, TrainConfig, Trainer};

#[test]
fn identical_seeds_give_identical_runs() {
    let run = || {
        let scale = RunScale::smoke(71);
        run_one(
            &RunSpec {
                kind: ModelKind::LiPFormer,
                dataset: DatasetName::ETTh1,
                pred_len: 12,
                univariate: false,
            },
            &scale,
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.mse.to_bits(), b.mse.to_bits(), "MSE must be bit-identical");
    assert_eq!(a.mae.to_bits(), b.mae.to_bits(), "MAE must be bit-identical");
    assert_eq!(a.eff.macs, b.eff.macs);
    assert_eq!(a.eff.params, b.eff.params);
}

#[test]
fn different_data_seeds_give_different_results() {
    let run = |seed| {
        let scale = RunScale::smoke(seed);
        run_one(
            &RunSpec {
                kind: ModelKind::DLinear,
                dataset: DatasetName::ETTh2,
                pred_len: 12,
                univariate: false,
            },
            &scale,
        )
    };
    assert_ne!(run(1).mse.to_bits(), run(2).mse.to_bits());
}

#[test]
fn different_model_seeds_give_different_models() {
    let ds = generate(DatasetName::ETTh1, GeneratorConfig::test(72));
    let prep = prepare(&ds, 48, 12);
    let mut cfg = LiPFormerConfig::small(48, 12, prep.channels);
    cfg.hidden = 16;
    cfg.encoder_hidden = 16;
    let train = |model_seed: u64| {
        let mut model = LiPFormer::new(cfg.clone(), &prep.spec, model_seed);
        let mut trainer = Trainer::new(TrainConfig {
            epochs: 1,
            pretrain_epochs: 0,
            ..TrainConfig::fast()
        });
        trainer.fit(&mut model, &prep.train, &prep.val);
        ForecastMetrics::evaluate(&model, &prep.test, 64).mse
    };
    assert_ne!(train(1).to_bits(), train(2).to_bits());
}

#[test]
fn dropout_seed_controls_training_stochasticity() {
    let ds = generate(DatasetName::ETTm1, GeneratorConfig::test(73));
    let prep = prepare(&ds, 48, 12);
    let mut cfg = LiPFormerConfig::small(48, 12, prep.channels);
    cfg.hidden = 16;
    cfg.encoder_hidden = 16;
    cfg.dropout = 0.3;
    let train = |trainer_seed: u64| {
        let mut model = LiPFormer::new(cfg.clone(), &prep.spec, 9);
        let mut trainer = Trainer::new(TrainConfig {
            epochs: 1,
            pretrain_epochs: 0,
            seed: trainer_seed,
            ..TrainConfig::fast()
        });
        trainer.fit(&mut model, &prep.train, &prep.val);
        ForecastMetrics::evaluate(&model, &prep.test, 64).mse
    };
    // same trainer seed reproduces; different one diverges (dropout masks +
    // shuffle order differ)
    assert_eq!(train(5).to_bits(), train(5).to_bits());
    assert_ne!(train(5).to_bits(), train(6).to_bits());
}

#[test]
fn seeded_initializers_are_byte_identical() {
    // randn: same seed → identical binary frames
    let a = Tensor::randn(&[32, 8], &mut StdRng::seed_from_u64(99)).to_bytes();
    let b = Tensor::randn(&[32, 8], &mut StdRng::seed_from_u64(99)).to_bytes();
    assert_eq!(a, b, "randn must be byte-identical per seed");
    assert_ne!(
        a,
        Tensor::randn(&[32, 8], &mut StdRng::seed_from_u64(100)).to_bytes(),
        "different seeds must differ"
    );
    // kaiming: same seed → identical binary frames
    let k1 = Tensor::kaiming_uniform(64, 16, &mut StdRng::seed_from_u64(5)).to_bytes();
    let k2 = Tensor::kaiming_uniform(64, 16, &mut StdRng::seed_from_u64(5)).to_bytes();
    assert_eq!(k1, k2, "kaiming_uniform must be byte-identical per seed");
}

#[test]
fn same_seed_gives_identical_forward_logits() {
    let spec = CovariateSpec {
        numerical: 0,
        cardinalities: vec![],
        time_features: 4,
    };
    let mut cfg = LiPFormerConfig::small(24, 8, 2);
    cfg.hidden = 16;
    cfg.encoder_hidden = 16;
    let batch = {
        let mut rng = StdRng::seed_from_u64(3);
        Batch {
            x: Tensor::randn(&[4, 24, 2], &mut rng),
            y: Tensor::randn(&[4, 8, 2], &mut rng),
            time_feats: Tensor::randn(&[4, 8, 4], &mut rng).mul_scalar(0.2),
            cov_numerical: None,
            cov_categorical: None,
        }
    };
    let logits = || {
        let model = LiPFormer::new(cfg.clone(), &spec, 1234);
        let mut rng = StdRng::seed_from_u64(0);
        let mut g = lip_autograd::Graph::new(model.store());
        let y = model.forward(&mut g, &batch, false, &mut rng);
        g.value(y).to_bytes()
    };
    assert_eq!(
        logits(),
        logits(),
        "two fresh models from the same seed must emit bit-identical logits"
    );
}

/// A small but complete forward fixture shared by the thread-invariance
/// tests: model construction, one forward pass, serialized logits.
fn forward_logit_bytes() -> Vec<u8> {
    let spec = CovariateSpec {
        numerical: 0,
        cardinalities: vec![],
        time_features: 4,
    };
    let mut cfg = LiPFormerConfig::small(24, 8, 2);
    cfg.hidden = 16;
    cfg.encoder_hidden = 16;
    let batch = {
        let mut rng = StdRng::seed_from_u64(3);
        Batch {
            x: Tensor::randn(&[4, 24, 2], &mut rng),
            y: Tensor::randn(&[4, 8, 2], &mut rng),
            time_feats: Tensor::randn(&[4, 8, 4], &mut rng).mul_scalar(0.2),
            cov_numerical: None,
            cov_categorical: None,
        }
    };
    let model = LiPFormer::new(cfg, &spec, 1234);
    let mut rng = StdRng::seed_from_u64(0);
    let mut g = lip_autograd::Graph::new(model.store());
    let y = model.forward(&mut g, &batch, false, &mut rng);
    g.value(y).to_bytes()
}

/// The lip-par contract, end to end: a full model forward must emit
/// bit-identical logits whether the kernels run on 1 thread or
/// oversubscribed on 4.
#[test]
fn forward_logits_invariant_across_thread_budgets() {
    let serial = lip_par::with_threads(1, forward_logit_bytes);
    for threads in [2usize, 4] {
        let par = lip_par::with_threads(threads, forward_logit_bytes);
        assert_eq!(
            serial, par,
            "forward logits must not depend on the thread budget ({threads} threads)"
        );
    }
}

/// Two epochs of real training — dropout, shuffling, optimizer state,
/// gradient accumulation through every parallel backward path — must leave
/// every parameter byte-identical across thread budgets.
#[test]
fn two_epoch_training_invariant_across_thread_budgets() {
    let train_param_bytes = || {
        let ds = generate(DatasetName::ETTh1, GeneratorConfig::test(74));
        let prep = prepare(&ds, 48, 12);
        let mut cfg = LiPFormerConfig::small(48, 12, prep.channels);
        cfg.hidden = 16;
        cfg.encoder_hidden = 16;
        cfg.dropout = 0.2;
        let mut model = LiPFormer::new(cfg, &prep.spec, 7);
        let mut trainer = Trainer::new(TrainConfig {
            epochs: 2,
            pretrain_epochs: 0,
            ..TrainConfig::fast()
        });
        trainer.fit(&mut model, &prep.train, &prep.val);
        let store = model.store();
        let mut bytes = Vec::new();
        for id in store.ids() {
            bytes.extend_from_slice(store.name(id).as_bytes());
            bytes.extend_from_slice(&store.value(id).to_bytes());
        }
        (bytes, ForecastMetrics::evaluate(&model, &prep.test, 64).mse)
    };
    let (serial_bytes, serial_mse) = lip_par::with_threads(1, train_param_bytes);
    let (par_bytes, par_mse) = lip_par::with_threads(4, train_param_bytes);
    assert_eq!(
        serial_bytes, par_bytes,
        "trained parameters must be byte-identical on 1 vs 4 threads"
    );
    assert_eq!(serial_mse.to_bits(), par_mse.to_bits());
}

/// FNV-1a over a byte stream — tiny, dependency-free, and stable across
/// platforms; good enough to pin golden outputs without embedding them.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Golden regression: the forward logits of the fixed fixture must match the
/// hash captured on pre-strided-view `main`. The strided refactor promised
/// *bit-identical* numerics — any kernel change that reorders a single
/// floating-point operation trips this.
#[test]
fn forward_logits_match_pre_refactor_golden_hash() {
    let bytes = lip_par::with_threads(1, forward_logit_bytes);
    assert_eq!(bytes.len(), 288, "fixture shape drifted");
    assert_eq!(
        fnv1a(&bytes),
        0x9f40_8c68_9529_80e1,
        "forward logits diverged from the pre-refactor golden output"
    );
}

/// Golden regression for the full training loop: two epochs on the fixed
/// fixture must reproduce the exact parameter bytes (and test MSE bits)
/// captured on pre-strided-view `main`.
#[test]
fn two_epoch_training_matches_pre_refactor_golden_hash() {
    let (bytes, mse) = lip_par::with_threads(1, || {
        let ds = generate(DatasetName::ETTh1, GeneratorConfig::test(74));
        let prep = prepare(&ds, 48, 12);
        let mut cfg = LiPFormerConfig::small(48, 12, prep.channels);
        cfg.hidden = 16;
        cfg.encoder_hidden = 16;
        cfg.dropout = 0.2;
        let mut model = LiPFormer::new(cfg, &prep.spec, 7);
        let mut trainer = Trainer::new(TrainConfig {
            epochs: 2,
            pretrain_epochs: 0,
            ..TrainConfig::fast()
        });
        trainer.fit(&mut model, &prep.train, &prep.val);
        let store = model.store();
        let mut bytes = Vec::new();
        for id in store.ids() {
            bytes.extend_from_slice(store.name(id).as_bytes());
            bytes.extend_from_slice(&store.value(id).to_bytes());
        }
        (bytes, ForecastMetrics::evaluate(&model, &prep.test, 64).mse)
    });
    assert_eq!(bytes.len(), 37563, "parameter inventory drifted");
    assert_eq!(
        fnv1a(&bytes),
        0xb30b_11c1_130d_44d5,
        "trained parameters diverged from the pre-refactor golden output"
    );
    assert_eq!(
        mse.to_bits(),
        0x3f6c_572f,
        "post-training test MSE diverged from the pre-refactor golden value"
    );
}

/// The `LIP_THREADS` env override itself (parsed once per process) must
/// produce identical logits across processes pinned to different budgets.
/// Reuses the re-exec pattern: each child is a fresh process with its own
/// `LIP_THREADS`, writing the serialized logits for the parent to compare.
#[test]
fn forward_logits_identical_across_lip_threads_env() {
    if let Ok(out) = std::env::var("LIP_REPRO_LOGITS_OUT") {
        // child mode: one forward pass under this process's LIP_THREADS
        std::fs::write(&out, forward_logit_bytes()).unwrap();
        return;
    }

    let dir = std::env::temp_dir().join("lipformer_repro_threads");
    std::fs::create_dir_all(&dir).unwrap();
    let exe = std::env::current_exe().expect("test binary path");
    let mut outputs = Vec::new();
    for threads in ["1", "4"] {
        let path = dir.join(format!("logits_t{threads}.bin"));
        let status = std::process::Command::new(&exe)
            .args([
                "forward_logits_identical_across_lip_threads_env",
                "--exact",
                "--nocapture",
            ])
            .env("LIP_REPRO_LOGITS_OUT", &path)
            .env("LIP_THREADS", threads)
            .status()
            .expect("spawn child test process");
        assert!(status.success(), "child with LIP_THREADS={threads} failed");
        outputs.push(std::fs::read(&path).unwrap());
        std::fs::remove_file(&path).ok();
    }
    assert!(!outputs[0].is_empty());
    assert_eq!(
        outputs[0], outputs[1],
        "LIP_THREADS=1 and LIP_THREADS=4 must emit byte-identical logits"
    );
}

/// Checkpoint files must be byte-identical across *separate processes* for
/// the same seed. The test re-execs itself (libtest filter + env marker) so
/// each checkpoint is produced by a genuinely fresh process: fresh ASLR,
/// fresh allocator, fresh global state.
#[test]
fn checkpoint_files_identical_across_fresh_processes() {
    let write_checkpoint = |path: &std::path::Path| {
        let spec = CovariateSpec {
            numerical: 0,
            cardinalities: vec![],
            time_features: 4,
        };
        let mut cfg = LiPFormerConfig::small(24, 8, 2);
        cfg.hidden = 16;
        cfg.encoder_hidden = 16;
        let model = LiPFormer::new(cfg.clone(), &spec, 4242);
        lipformer::checkpoint::save(path, &cfg, model.store()).unwrap();
    };

    if let Ok(out) = std::env::var("LIP_REPRO_CHILD_OUT") {
        // child mode: write the checkpoint and stop
        write_checkpoint(std::path::Path::new(&out));
        return;
    }

    let dir = std::env::temp_dir().join("lipformer_repro_proc");
    std::fs::create_dir_all(&dir).unwrap();
    let paths = [dir.join("run_a.ckpt"), dir.join("run_b.ckpt")];
    let exe = std::env::current_exe().expect("test binary path");
    for p in &paths {
        let status = std::process::Command::new(&exe)
            .args([
                "checkpoint_files_identical_across_fresh_processes",
                "--exact",
                "--nocapture",
            ])
            .env("LIP_REPRO_CHILD_OUT", p)
            .status()
            .expect("spawn child test process");
        assert!(status.success(), "child process failed");
    }
    let a = std::fs::read(&paths[0]).unwrap();
    let b = std::fs::read(&paths[1]).unwrap();
    assert!(!a.is_empty());
    assert_eq!(a, b, "checkpoint bytes must match across fresh processes");
    for p in &paths {
        std::fs::remove_file(p).ok();
    }
}
