//! Determinism guarantees: the whole stack — generation, batching, dropout,
//! training — is a pure function of the seeds.

use lip_data::pipeline::prepare;
use lip_data::{generate, DatasetName, GeneratorConfig};
use lip_eval::runner::{run_one, RunSpec};
use lip_eval::{ModelKind, RunScale};
use lipformer::{ForecastMetrics, LiPFormer, LiPFormerConfig, TrainConfig, Trainer};

#[test]
fn identical_seeds_give_identical_runs() {
    let run = || {
        let scale = RunScale::smoke(71);
        run_one(
            &RunSpec {
                kind: ModelKind::LiPFormer,
                dataset: DatasetName::ETTh1,
                pred_len: 12,
                univariate: false,
            },
            &scale,
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.mse.to_bits(), b.mse.to_bits(), "MSE must be bit-identical");
    assert_eq!(a.mae.to_bits(), b.mae.to_bits(), "MAE must be bit-identical");
    assert_eq!(a.eff.macs, b.eff.macs);
    assert_eq!(a.eff.params, b.eff.params);
}

#[test]
fn different_data_seeds_give_different_results() {
    let run = |seed| {
        let scale = RunScale::smoke(seed);
        run_one(
            &RunSpec {
                kind: ModelKind::DLinear,
                dataset: DatasetName::ETTh2,
                pred_len: 12,
                univariate: false,
            },
            &scale,
        )
    };
    assert_ne!(run(1).mse.to_bits(), run(2).mse.to_bits());
}

#[test]
fn different_model_seeds_give_different_models() {
    let ds = generate(DatasetName::ETTh1, GeneratorConfig::test(72));
    let prep = prepare(&ds, 48, 12);
    let mut cfg = LiPFormerConfig::small(48, 12, prep.channels);
    cfg.hidden = 16;
    cfg.encoder_hidden = 16;
    let train = |model_seed: u64| {
        let mut model = LiPFormer::new(cfg.clone(), &prep.spec, model_seed);
        let mut trainer = Trainer::new(TrainConfig {
            epochs: 1,
            pretrain_epochs: 0,
            ..TrainConfig::fast()
        });
        trainer.fit(&mut model, &prep.train, &prep.val);
        ForecastMetrics::evaluate(&model, &prep.test, 64).mse
    };
    assert_ne!(train(1).to_bits(), train(2).to_bits());
}

#[test]
fn dropout_seed_controls_training_stochasticity() {
    let ds = generate(DatasetName::ETTm1, GeneratorConfig::test(73));
    let prep = prepare(&ds, 48, 12);
    let mut cfg = LiPFormerConfig::small(48, 12, prep.channels);
    cfg.hidden = 16;
    cfg.encoder_hidden = 16;
    cfg.dropout = 0.3;
    let train = |trainer_seed: u64| {
        let mut model = LiPFormer::new(cfg.clone(), &prep.spec, 9);
        let mut trainer = Trainer::new(TrainConfig {
            epochs: 1,
            pretrain_epochs: 0,
            seed: trainer_seed,
            ..TrainConfig::fast()
        });
        trainer.fit(&mut model, &prep.train, &prep.val);
        ForecastMetrics::evaluate(&model, &prep.test, 64).mse
    };
    // same trainer seed reproduces; different one diverges (dropout masks +
    // shuffle order differ)
    assert_eq!(train(5).to_bits(), train(5).to_bits());
    assert_ne!(train(5).to_bits(), train(6).to_bits());
}
