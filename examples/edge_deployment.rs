//! Edge-device deployment (paper §IV-E1, Table VII): train a LiPFormer,
//! checkpoint it to disk with the binary tensor format, reload, and compare
//! single-sample CPU inference latency against a vanilla Transformer across
//! growing input lengths.
//!
//! `cargo run --release -p lip-eval --example edge_deployment`

use std::time::Instant;

use lip_autograd::Graph;
use lip_baselines::VanillaTransformer;
use lip_data::pipeline::prepare;
use lip_data::window::Batch;
use lip_data::{generate, DatasetName, GeneratorConfig};
use lip_tensor::Tensor;
use lipformer::{Forecaster, LiPFormer, LiPFormerConfig, TrainConfig, Trainer};
use lip_rng::rngs::StdRng;
use lip_rng::SeedableRng;

fn main() {
    // --- train a small model on ETTh1-like data --------------------------
    let dataset = generate(
        DatasetName::ETTh1,
        GeneratorConfig {
            seed: 3,
            length_scale: 0.08,
            max_channels: 6,
            max_len: 1200,
        },
    );
    let (seq_len, pred_len) = (96, 24);
    let prep = prepare(&dataset, seq_len, pred_len);
    let mut config = LiPFormerConfig::small(seq_len, pred_len, prep.channels);
    config.hidden = 32;
    let mut model = LiPFormer::new(config, &prep.spec, 3);
    let mut trainer = Trainer::new(TrainConfig {
        epochs: 4,
        pretrain_epochs: 1,
        lr: 1e-2,
        ..TrainConfig::fast()
    });
    trainer.pretrain(&mut model, &prep.train);
    trainer.fit(&mut model, &prep.train, &prep.val);

    // --- checkpoint: binary-serialize every parameter tensor -------------
    let ckpt_dir = std::env::temp_dir().join("lipformer_edge_ckpt");
    std::fs::create_dir_all(&ckpt_dir).expect("checkpoint dir");
    let mut bytes_written = 0usize;
    let snapshot = model.store().snapshot();
    for (i, tensor) in snapshot.iter().enumerate() {
        let frame = tensor.to_bytes();
        bytes_written += frame.len();
        std::fs::write(ckpt_dir.join(format!("p{i}.bin")), &frame).expect("write param");
    }
    println!(
        "checkpointed {} tensors ({:.1} KiB) to {}",
        snapshot.len(),
        bytes_written as f64 / 1024.0,
        ckpt_dir.display()
    );

    // --- reload into a fresh model and verify identical predictions ------
    let mut config2 = LiPFormerConfig::small(seq_len, pred_len, prep.channels);
    config2.hidden = 32;
    let mut reloaded = LiPFormer::new(config2, &prep.spec, 3);
    let restored: Vec<Tensor> = (0..snapshot.len())
        .map(|i| {
            let raw = std::fs::read(ckpt_dir.join(format!("p{i}.bin"))).expect("read param");
            Tensor::from_bytes(&raw[..]).expect("decode param")
        })
        .collect();
    reloaded.store_mut().restore(&restored);
    let probe = prep.test.batch(&[0]);
    let mut rng = StdRng::seed_from_u64(0);
    let original_pred = {
        let mut g = Graph::new(model.store());
        let y = model.forward(&mut g, &probe, false, &mut rng);
        g.value(y).clone()
    };
    let reloaded_pred = {
        let mut g = Graph::new(reloaded.store());
        let y = reloaded.forward(&mut g, &probe, false, &mut rng);
        g.value(y).clone()
    };
    let drift = original_pred.sub(&reloaded_pred).abs().max_value();
    println!("checkpoint roundtrip max prediction drift: {drift:e}");
    assert!(drift < 1e-6, "reload must reproduce the trained model");

    // --- Table VII shape: inference latency vs input length --------------
    println!("\nsingle-sample CPU inference latency (seconds):");
    println!("  input |  Transformer |   LiPFormer | speedup");
    for t in [96usize, 192, 336, 720] {
        let channels = prep.channels;
        let lip_cfg = {
            let mut c = LiPFormerConfig::small(t, pred_len, channels);
            c.hidden = 32;
            c
        };
        let lip = LiPFormer::without_enriching(lip_cfg, 1);
        let tf = VanillaTransformer::new(t, pred_len, channels, 32, 2, 1);
        let batch = Batch {
            x: Tensor::randn(&[1, t, channels], &mut rng),
            y: Tensor::zeros(&[1, pred_len, channels]),
            time_feats: Tensor::zeros(&[1, pred_len, 4]),
            cov_numerical: None,
            cov_categorical: None,
        };
        let time_of = |m: &dyn Forecaster| {
            // warm-up
            let mut r = StdRng::seed_from_u64(0);
            let mut g = Graph::new(m.store());
            let _ = m.forward(&mut g, &batch, false, &mut r);
            let reps = 5;
            let start = Instant::now();
            for _ in 0..reps {
                let mut g = Graph::new(m.store());
                let _ = m.forward(&mut g, &batch, false, &mut r);
            }
            start.elapsed().as_secs_f64() / reps as f64
        };
        let t_tf = time_of(&tf);
        let t_lip = time_of(&lip);
        println!("  {t:>5} | {t_tf:>11.5}s | {t_lip:>10.5}s | {:>6.1}×", t_tf / t_lip);
    }
}
