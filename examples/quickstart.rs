//! Quickstart: generate an ETTh1-like benchmark, train LiPFormer with
//! contrastive pre-training on implicit temporal features, evaluate on the
//! test split and print a sample forecast.
//!
//! `cargo run --release -p lip-eval --example quickstart`

use lip_autograd::Graph;
use lip_data::pipeline::prepare;
use lip_data::{generate, DatasetName, GeneratorConfig};
use lipformer::{ForecastMetrics, Forecaster, LiPFormer, LiPFormerConfig, TrainConfig, Trainer};
use lip_rng::rngs::StdRng;
use lip_rng::SeedableRng;

fn main() {
    // 1. Data: a seeded synthetic stand-in for ETTh1 (see DESIGN.md §2).
    let dataset = generate(
        DatasetName::ETTh1,
        GeneratorConfig {
            seed: 7,
            length_scale: 0.08,
            max_channels: 6,
            max_len: 1500,
        },
    );
    println!(
        "dataset: {} — {} steps × {} channels",
        dataset.name,
        dataset.series.len(),
        dataset.series.num_channels()
    );

    // 2. Pipeline: scaler fitted on train, 96-step windows, 24-step horizon.
    let (seq_len, pred_len) = (96, 24);
    let prep = prepare(&dataset, seq_len, pred_len);
    println!(
        "windows: train {} / val {} / test {}",
        prep.train.len(),
        prep.val.len(),
        prep.test.len()
    );

    // 3. Model: LiPFormer with weak-data enriching from time-of-day features.
    let mut config = LiPFormerConfig::small(seq_len, pred_len, prep.channels);
    config.hidden = 32;
    let mut model = LiPFormer::new(config, &prep.spec, 7);
    println!(
        "LiPFormer: {} trainable parameters (patch_len {}, {} patches)",
        model.num_parameters(),
        model.config().patch_len,
        model.config().num_patches()
    );

    // 4. Train: contrastive pre-training, then Smooth-L1 prediction training.
    let mut trainer = Trainer::new(TrainConfig {
        epochs: 8,
        pretrain_epochs: 2,
        lr: 1e-2,
        ..TrainConfig::fast()
    });
    let pre = trainer.pretrain(&mut model, &prep.train);
    println!("pre-training losses: {pre:?}");
    let report = trainer.fit(&mut model, &prep.train, &prep.val);
    println!(
        "trained {} epochs, best val MSE {:.4} at epoch {}",
        report.epochs_run, report.best_val_loss, report.best_epoch
    );

    // 5. Evaluate on the held-out test split (standardized scale).
    let metrics = ForecastMetrics::evaluate(&model, &prep.test, 64);
    println!("test: MSE {:.4}  MAE {:.4}", metrics.mse, metrics.mae);

    // 6. One forecast, inverse-transformed back to physical units.
    let batch = prep.test.batch(&[0]);
    let mut rng = StdRng::seed_from_u64(0);
    let mut g = Graph::new(model.store());
    let pred = model.forward(&mut g, &batch, false, &mut rng);
    let pred_physical = prep.scaler.inverse_transform(g.value(pred));
    let truth_physical = prep.scaler.inverse_transform(&batch.y);
    println!("\nfirst 8 forecast steps of channel 0 (physical units):");
    println!("  step |  forecast |     truth");
    for t in 0..8 {
        println!(
            "  {t:>4} | {:>9.3} | {:>9.3}",
            pred_physical.at(&[0, t, 0]),
            truth_physical.at(&[0, t, 0])
        );
    }
}
