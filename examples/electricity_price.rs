//! Electricity-price forecasting with explicit future weak labels — the
//! paper's motivating scenario (§I Challenge 2): spot prices spike with
//! scarcity that *history alone cannot predict* but grid forecasts (load,
//! wind, PV) can. Compares LiPFormer with and without the weak-data
//! enriching module on the Electri-Price benchmark.
//!
//! `cargo run --release -p lip-eval --example electricity_price`

use lip_data::pipeline::prepare;
use lip_data::{generate, DatasetName, GeneratorConfig};
use lipformer::{ForecastMetrics, LiPFormer, LiPFormerConfig, TrainConfig, Trainer};

fn main() {
    let dataset = generate(
        DatasetName::ElectriPrice,
        GeneratorConfig {
            seed: 11,
            length_scale: 0.08,
            max_channels: 6,
            max_len: 1800,
        },
    );
    let cov = dataset.covariates.as_ref().expect("Electri-Price has covariates");
    println!(
        "Electri-Price: {} steps × {} target channels, {} weak labels:",
        dataset.series.len(),
        dataset.series.num_channels(),
        cov.num_channels()
    );
    for name in &cov.names {
        println!("  - {name}");
    }

    let (seq_len, pred_len) = (96, 24);
    let prep = prepare(&dataset, seq_len, pred_len);
    let train_cfg = TrainConfig {
        epochs: 10,
        pretrain_epochs: 3,
        lr: 1e-2,
        ..TrainConfig::fast()
    };

    // Arm 1: full LiPFormer — dual-encoder pre-training on the explicit
    // covariates, frozen encoder guiding prediction (Eq. 8).
    let mut config = LiPFormerConfig::small(seq_len, pred_len, prep.channels);
    config.hidden = 32;
    let mut with_enc = LiPFormer::new(config.clone(), &prep.spec, 11);
    let mut trainer = Trainer::new(train_cfg.clone());
    let pre_losses = trainer.pretrain(&mut with_enc, &prep.train);
    println!(
        "\ncontrastive pre-training: {} → {} (lower = encoders aligned)",
        pre_losses.first().map_or(f32::NAN, |v| *v),
        pre_losses.last().map_or(f32::NAN, |v| *v)
    );
    trainer.fit(&mut with_enc, &prep.train, &prep.val);
    let m_with = ForecastMetrics::evaluate(&with_enc, &prep.test, 64);

    // Arm 2: Base Predictor only (autoregressive, covariate-blind).
    let mut without_enc = LiPFormer::without_enriching(config, 11);
    let mut trainer2 = Trainer::new(train_cfg);
    trainer2.fit(&mut without_enc, &prep.train, &prep.val);
    let m_without = ForecastMetrics::evaluate(&without_enc, &prep.test, 64);

    println!("\n                     MSE      MAE");
    println!("with weak labels   {:.4}   {:.4}", m_with.mse, m_with.mae);
    println!("history only       {:.4}   {:.4}", m_without.mse, m_without.mae);
    println!(
        "weak data enriching cuts MSE by {:.1}% (paper Figure 6 reports 34%)",
        100.0 * (m_without.mse - m_with.mse) / m_without.mse
    );
}
