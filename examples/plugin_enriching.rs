//! Plug-and-play weak data enriching (paper §IV-E6, Table XII): attach the
//! dual-encoder Covariate Encoder to a *foreign* model — here the vanilla
//! Transformer — on the Cycle (Seattle bike counts) benchmark, where weather
//! forecasts causally drive ridership.
//!
//! `cargo run --release -p lip-eval --example plugin_enriching`

use lip_baselines::VanillaTransformer;
use lip_data::pipeline::prepare;
use lip_data::{generate, DatasetName, GeneratorConfig};
use lipformer::{ForecastMetrics, TrainConfig, Trainer, WithCovariateEncoder};

fn main() {
    let dataset = generate(
        DatasetName::Cycle,
        GeneratorConfig {
            seed: 5,
            length_scale: 0.08,
            max_channels: 6,
            max_len: 1500,
        },
    );
    println!(
        "Cycle: {} steps, targets {:?}, weak labels: {:?}",
        dataset.series.len(),
        dataset.series.channels,
        dataset.covariates.as_ref().map(|c| c.names.clone()).unwrap_or_default()
    );

    let (seq_len, pred_len) = (96, 24);
    let prep = prepare(&dataset, seq_len, pred_len);
    let train_cfg = TrainConfig {
        epochs: 6,
        pretrain_epochs: 2,
        lr: 5e-3,
        ..TrainConfig::fast()
    };

    // plain Transformer
    let mut plain = VanillaTransformer::new(seq_len, pred_len, prep.channels, 32, 2, 5);
    let mut t1 = Trainer::new(train_cfg.clone());
    t1.fit(&mut plain, &prep.train, &prep.val);
    let m_plain = ForecastMetrics::evaluate(&plain, &prep.test, 64);

    // the same Transformer wrapped with the Covariate Encoder
    let host: Box<dyn lipformer::Forecaster> =
        Box::new(VanillaTransformer::new(seq_len, pred_len, prep.channels, 32, 2, 5));
    let mut enriched = WithCovariateEncoder::new(host, &prep.spec, pred_len, prep.channels, 24, 5);
    let mut t2 = Trainer::new(train_cfg);
    t2.pretrain(&mut enriched, &prep.train);
    t2.fit(&mut enriched, &prep.train, &prep.val);
    let m_enriched = ForecastMetrics::evaluate(&enriched, &prep.test, 64);

    println!("\n                        MSE      MAE");
    println!("Transformer           {:.4}   {:.4}", m_plain.mse, m_plain.mae);
    println!("Transformer+CovEnc    {:.4}   {:.4}", m_enriched.mse, m_enriched.mae);
    println!(
        "\ntransplanting the encoder changes MSE by {:+.1}% (paper Table XII: −4% avg)",
        100.0 * (m_enriched.mse - m_plain.mse) / m_plain.mse
    );
}
