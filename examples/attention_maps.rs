//! Visualize what the patch-wise attentions learn (paper Figures 2–3):
//! train a small LiPFormer, then dump the Inter-Patch attention matrix
//! (patch tokens × patch tokens) and the Cross-Patch trend-sequence
//! attention as ASCII heatmaps for one test window.
//!
//! `cargo run --release -p lip-eval --example attention_maps`

use lip_autograd::{Graph, ParamStore};
use lip_data::pipeline::prepare;
use lip_data::{generate, DatasetName, GeneratorConfig};
use lip_nn::MultiHeadSelfAttention;
use lip_tensor::Tensor;
use lip_rng::rngs::StdRng;
use lip_rng::SeedableRng;

fn ascii(matrix: &Tensor) -> String {
    let (h, w) = (matrix.shape()[0], matrix.shape()[1]);
    let (lo, hi) = (matrix.min_value(), matrix.max_value());
    let range = (hi - lo).max(1e-9);
    let ramp: &[u8] = b" .:-=+*#%@";
    let mut out = String::new();
    for r in 0..h {
        for c in 0..w {
            let v = (matrix.at(&[r, c]) - lo) / range;
            let i = ((v * (ramp.len() - 1) as f32) as usize).min(ramp.len() - 1);
            out.push(ramp[i] as char);
            out.push(ramp[i] as char); // double-width cells
        }
        out.push('\n');
    }
    out
}

/// A probe model exposing its attention internals: the same geometry as the
/// LiPFormer backbone, built from the public `lip-nn` blocks so the maps can
/// be extracted without private access.
struct Probe {
    store: ParamStore,
    trend_attn: MultiHeadSelfAttention,
    patch_attn: MultiHeadSelfAttention,
    pl: usize,
}

impl Probe {
    fn new(n: usize, pl: usize, hidden: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let trend_attn = MultiHeadSelfAttention::new(&mut store, "trend", n, 1, &mut rng);
        let patch_attn =
            MultiHeadSelfAttention::new(&mut store, "patch", hidden, 4, &mut rng);
        let _ = hidden;
        Probe {
            store,
            trend_attn,
            patch_attn,
            pl,
        }
    }
}

fn main() {
    let dataset = generate(
        DatasetName::ETTh1,
        GeneratorConfig {
            seed: 9,
            length_scale: 0.08,
            max_channels: 4,
            max_len: 1200,
        },
    );
    let (seq_len, pred_len) = (96, 24);
    let prep = prepare(&dataset, seq_len, pred_len);
    let (n, pl, hidden) = (8usize, 12usize, 32usize);
    let probe = Probe::new(n, pl, hidden, 9);

    // one standardized test window, channel 0, patched
    let batch = prep.test.batch(&[0]);
    let channel0 = batch.x.slice_axis(2, 0, 1).reshape(&[1, seq_len]);
    let patched = channel0.reshape(&[1, n, pl]);

    println!("window of {} patches × {} points (ETTh1-like, channel 0)\n", n, pl);

    // Cross-Patch view: trend sequences are the transpose [1, pl, n];
    // attention runs across the pl lagged trend sequences
    let mut g = Graph::new(&probe.store);
    let trends = g.constant(patched.transpose(1, 2));
    let trend_w = probe.trend_attn.attention_weights(&mut g, trends);
    let trend_map = g
        .value(trend_w)
        .slice_axis(1, 0, 1)
        .reshape(&[probe.pl, probe.pl]);
    println!(
        "Cross-Patch attention over the {} trend sequences (row attends to column):\n{}",
        pl,
        ascii(&trend_map)
    );

    // Inter-Patch view: lift patches to hd and attend across the n tokens
    let mut rng = StdRng::seed_from_u64(1);
    let lift = Tensor::kaiming_uniform(pl, hidden, &mut rng);
    let mut g2 = Graph::new(&probe.store);
    let x = g2.constant(patched.matmul(&lift));
    let patch_w = probe.patch_attn.attention_weights(&mut g2, x);
    // average the heads
    let heads = probe.patch_attn.heads();
    let avg = g2
        .value(patch_w)
        .reshape(&[heads, n, n])
        .mean_axis(0)
        .reshape(&[n, n]);
    println!(
        "Inter-Patch attention over the {} patch tokens (head-averaged):\n{}",
        n,
        ascii(&avg)
    );

    // row-stochasticity check so the maps are trustworthy
    for (name, m, width) in [("cross", &trend_map, pl), ("inter", &avg, n)] {
        for row in m.data().chunks(width) {
            let s: f32 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-3, "{name} attention row sums to {s}");
        }
    }
    println!("(all attention rows sum to 1 — valid distributions)");
}
