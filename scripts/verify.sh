#!/usr/bin/env sh
# Hermetic verification gate: the whole workspace must build and test
# offline (no registry, no network) — every dependency is an in-tree
# lip-* path crate — and must behave bit-identically at any thread count.
set -eu
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline (warnings are errors)"
RUSTFLAGS="-D warnings" cargo build --release --offline

echo "==> cargo doc --no-deps (rustdoc warnings are errors; missing docs fail lip-par/lip-exec/lip-analyze/lip-tensor)"
RUSTDOCFLAGS="-D warnings" cargo doc -q --no-deps --offline

echo "==> cargo clippy --all-targets (lints are errors, workspace-wide)"
cargo clippy -q --all-targets --offline -- -D warnings

echo "==> cargo test -q --offline (host-default thread budget)"
cargo test -q --offline

echo "==> cargo test -q --offline under LIP_THREADS=1 (serial budget)"
LIP_THREADS=1 cargo test -q --offline

echo "==> lip-analyze --lint --check-model (static graph gate)"
cargo run -q --release --offline -p lip-analyze -- --lint --check-model

echo "==> lip-analyze --verify-plan (static schedule verifier: def-before-use,"
echo "    liveness, symbolic arena bounds, fusion legality, partition proof,"
echo "    kernel-source audit, and every registered stage composition swept"
echo "    through plan/runtime parity + fused/unfused schedule verification"
echo "    — exit 1 on any finding)"
cargo run -q --release --offline -p lip-analyze -- --verify-plan

echo "==> par_baseline bench smoke (serial vs parallel; fails on divergence)"
cargo run -q --release --offline -p lip-bench --bin par_baseline BENCH_pr4.json

echo "==> mem_baseline bench smoke (layout-copy accounting; fails on any copy)"
# the bin itself exits non-zero naming the offending op kinds if a pure
# layout op (permute/slice/broadcast/unfold) copied, or if a forward does
# not beat the pre-refactor copy baseline
cargo run -q --release --offline -p lip-bench --bin mem_baseline BENCH_pr5.json

echo "==> verify: BENCH_pr5.json records zero layout-copy allocations"
if grep -E '"(permute|slice|broadcast|unfold)_copied": *[1-9]' BENCH_pr5.json; then
  echo "FAIL: a layout op copied data on some benchmark (see fields above)" >&2
  exit 1
fi
if grep -E '"violations": *\[ *"' BENCH_pr5.json; then
  echo "FAIL: zero-copy violations recorded (op kinds listed above)" >&2
  exit 1
fi

echo "==> perf_suite (tiled-kernel perf suite; regression-gated vs committed BENCH_pr7.json)"
# the bin enforces: four-way byte parity (tape/exec × serial/parallel),
# fused_ops >= 1 and pack_copied <= the post-tiling ceiling on every
# benchmark, per-dataset counters never above the committed BENCH_pr7.json,
# and the nine-dataset CPU-time totals within LIP_PERF_TOL (default 10%)
# of it. The fresh run goes to a scratch file so the committed baseline
# stays the comparison anchor.
cargo run -q --release --offline -p lip-bench --bin perf_suite BENCH_pr7_check.json BENCH_pr7.json
rm -f BENCH_pr7_check.json

echo "==> verify: BENCH_pr7.json itself respects the pack ceiling and fused-op floor"
if grep -E '"pack_copied": *(4[5-9][0-9]{4}|[5-9][0-9]{5}|[0-9]{7,})' BENCH_pr7.json; then
  echo "FAIL: committed BENCH_pr7.json has pack_copied above the 450000 B ceiling" >&2
  exit 1
fi
if grep -E '"fused_ops": *0' BENCH_pr7.json; then
  echo "FAIL: committed BENCH_pr7.json records a benchmark with zero fused ops" >&2
  exit 1
fi

echo "==> lip-exec bench smoke (compiled executor vs tape; fails on byte divergence,"
echo "    including every registered stage composition)"
# the executor differential sweep itself runs inside both cargo test passes
# above (crates/exec/tests); this exercises the binary end-to-end and checks
# the arena-undercuts-tape-peak contract at the default thread budget…
cargo run -q --release --offline -p lip-exec BENCH_exec.json

echo "==> lip-exec bench smoke under LIP_THREADS=1"
# …and again on the serial budget: parity must hold at any thread count
LIP_THREADS=1 cargo run -q --release --offline -p lip-exec BENCH_exec_serial.json

echo "==> pretrain_zoo (cross-dataset transfer study; bit-gated vs committed BENCH_pr10.json)"
# sequential backbone pretrain over the nine benchmarks, then per-dataset
# zero-shot / few-shot / from-scratch MSE. The run is deterministic, so
# every numeric field must reproduce the committed report bit-for-bit; the
# fresh run goes to a scratch file so the committed baseline stays the
# comparison anchor.
cargo run -q --release --offline -p lip-bench --bin pretrain_zoo BENCH_pr10_check.json BENCH_pr10.json
rm -f BENCH_pr10_check.json

echo "==> serve_bench (micro-batching server sweep; regression-gated vs committed BENCH_serve.json)"
# the bin starts a live lip-serve server and, per benchmark dataset, runs
# 4 keep-alive clients x 32 requests, checking every socket response
# byte-for-byte against a direct lip-exec forward (fnv1a-64 row hashes).
# It exits non-zero on any parity break, request error, worker death, no
# observed coalescing, or a nine-dataset CPU total more than
# LIP_SERVE_TOL (default 50%) above the committed baseline. The fresh
# run goes to a scratch file so the committed baseline stays the anchor.
cargo run -q --release --offline -p lip-serve --bin serve_bench BENCH_serve_check.json BENCH_serve.json
rm -f BENCH_serve_check.json

echo "==> serve_bench under LIP_THREADS=1 (structural gates only: parity, errors,"
echo "    coalescing, worker health — serial CPU totals are not baseline-comparable)"
LIP_THREADS=1 cargo run -q --release --offline -p lip-serve --bin serve_bench BENCH_serve_serial.json
rm -f BENCH_serve_serial.json

echo "==> verify: BENCH_serve.json itself records parity, zero errors, and coalescing"
if grep -E '"errors": *[1-9]' BENCH_serve.json; then
  echo "FAIL: committed BENCH_serve.json records request errors" >&2
  exit 1
fi
if grep -E '"parity_ok": *false' BENCH_serve.json; then
  echo "FAIL: committed BENCH_serve.json records a served/direct parity break" >&2
  exit 1
fi
if grep -E '"coalesced_max": *[01],' BENCH_serve.json; then
  echo "FAIL: committed BENCH_serve.json shows no micro-batch coalescing" >&2
  exit 1
fi

echo "==> verify: only lip-* path dependencies in Cargo.tomls"
if grep -rhE '^[a-zA-Z0-9_-]+ *= *[{"]' Cargo.toml crates/*/Cargo.toml \
    | grep -vE '^(lip-[a-z]+|lipformer) *=' \
    | grep -vE '^(name|version|edition|path|test|harness|members|resolver|description|license|repository|lto) *='; then
  echo "FAIL: non lip-* dependency found above" >&2
  exit 1
fi

echo "OK: offline build + double test run green (LIP_THREADS=1 and default),"
echo "    rustdoc clean under -D warnings, clippy clean under -D warnings,"
echo "    static plan verifier zero findings (schedules, partitions, kernels),"
echo "    parallel/serial bit-identical, zero layout-copy allocations,"
echo "    perf suite within tolerance (pack ceiling, fused-op floor, timings),"
echo "    compiled executor byte-identical to the tape on all nine benchmarks"
echo "    and on every registered stage composition,"
echo "    transfer zoo bit-identical to the committed BENCH_pr10.json,"
echo "    serving sweep byte-identical to direct execution with coalescing live,"
echo "    zero external dependencies"
